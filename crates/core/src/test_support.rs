//! Shared corruption-sweep helpers for fault-injection tests.
//!
//! The checkpoint, spill, and end-to-end fault suites all sweep the same
//! three corruption families over serialized artifacts: truncation at every
//! prefix length (torn write), single-bit flips (media decay, bad RAM), and
//! strided cut points (bounded torn-write sweeps over large frames). Before
//! this module each suite carried its own copy of the loops; they drifted in
//! which bits they flipped and which cuts they tried. The loops live here
//! once and every suite calls them.
//!
//! The module is compiled into the library (not `#[cfg(test)]`) because the
//! workspace integration tests link against `aggclust_core` as an external
//! crate and could not see a test-only module. It has no runtime callers;
//! the fs-facade lint and the panic lint both apply to it like any other
//! non-test code.

/// All eight bit positions of a byte, for exhaustive single-bit-flip sweeps.
pub const ALL_BITS: [u8; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

/// A spot-check subset of bit positions (low, middle, high) for sweeps where
/// an exhaustive `byte x bit` product would be too slow — e.g. when every
/// probe reruns a full consensus pipeline.
pub const SPOT_BITS: [u8; 3] = [0, 3, 7];

/// Calls `check(len, prefix)` for every proper prefix of `bytes`, from the
/// empty prefix up to `bytes.len() - 1`. Models a torn write that stopped
/// after `len` bytes; decoders must reject (or transparently rebuild) every
/// one of them, never panic.
pub fn for_each_truncation(bytes: &[u8], mut check: impl FnMut(usize, &[u8])) {
    for len in 0..bytes.len() {
        check(len, &bytes[..len]);
    }
}

/// Calls `check(byte, bit, corrupted)` for every byte index of `bytes`
/// crossed with every bit position in `bits`. The buffer passed to `check`
/// differs from `bytes` in exactly that one bit; the flip is undone before
/// the next probe so only one copy of the input is ever made.
pub fn for_each_bit_flip(bytes: &[u8], bits: &[u8], mut check: impl FnMut(usize, u8, &[u8])) {
    let mut corrupted = bytes.to_vec();
    for byte in 0..bytes.len() {
        for &bit in bits {
            corrupted[byte] ^= 1 << bit;
            check(byte, bit, &corrupted);
            corrupted[byte] ^= 1 << bit;
        }
    }
}

/// Cut points for a bounded torn-write sweep over a `len`-byte artifact:
/// every `stride`-th offset starting at zero. The zero cut (empty file) is
/// always included; `stride` is clamped to at least 1. Use [`ALL_BITS`]-style
/// exhaustive sweeps for small frames and this for frames where every cut
/// costs a full pipeline rerun.
pub fn strided_cuts(len: usize, stride: usize) -> Vec<usize> {
    (0..len).step_by(stride.max(1)).collect()
}

/// The splitmix64 step: advances `state` and returns the next 64-bit output.
/// This is the same generator the failpoint plans use for `prob=` coins, so
/// chaos tests can derive per-plan seeds that match injection behaviour.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_visits_every_prefix_once() {
        let bytes = [1u8, 2, 3, 4, 5];
        let mut seen = Vec::new();
        for_each_truncation(&bytes, |len, prefix| {
            assert_eq!(prefix, &bytes[..len]);
            seen.push(len);
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bit_flip_touches_exactly_one_bit_and_restores() {
        let bytes = [0u8, 0xff, 0x5a];
        let mut probes = 0usize;
        for_each_bit_flip(&bytes, &ALL_BITS, |byte, bit, corrupted| {
            probes += 1;
            for (i, (&a, &b)) in bytes.iter().zip(corrupted).enumerate() {
                if i == byte {
                    assert_eq!(a ^ (1 << bit), b);
                } else {
                    assert_eq!(a, b, "probe {byte}:{bit} leaked into byte {i}");
                }
            }
        });
        assert_eq!(probes, bytes.len() * 8);
    }

    #[test]
    fn strided_cuts_cover_zero_and_stay_in_range() {
        let cuts = strided_cuts(1000, 199);
        assert_eq!(cuts, vec![0, 199, 398, 597, 796, 995]);
        assert_eq!(strided_cuts(0, 10), Vec::<usize>::new());
        assert_eq!(strided_cuts(5, 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn splitmix64_is_deterministic_and_advances() {
        let mut a = 7u64;
        let mut b = 7u64;
        let first = splitmix64(&mut a);
        assert_eq!(first, splitmix64(&mut b));
        assert_ne!(first, splitmix64(&mut a));
    }
}
