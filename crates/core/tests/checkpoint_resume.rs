//! Crash-safe checkpoint/resume properties.
//!
//! The contract under test: for *any* instance, *any* interrupt point, and
//! *any* checkpoint cadence, interrupting a run and resuming it from the
//! checkpoint written at the interrupt produces **bit-identical** final
//! labels and cost to the same run left uninterrupted. The snapshot is the
//! complete algorithm state, so resumption is replay, not approximation.
//!
//! Also here: the memory-governance contract — a refused allocation charges
//! nothing, and governed structures release their charge on drop.

use std::path::{Path, PathBuf};
use std::time::Duration;

use aggclust_core::algorithms::local_search::LocalSearchInit;
use aggclust_core::algorithms::sampling::{sampling, sampling_resumable};
use aggclust_core::algorithms::{
    AgglomerativeParams, Algorithm, LocalSearchParams, SamplingParams,
};
use aggclust_core::clustering::{Clustering, PartialClustering};
use aggclust_core::cost::correlation_cost;
use aggclust_core::instance::{CorrelationInstance, DenseOracle, MissingPolicy};
use aggclust_core::robust::Interrupt;
use aggclust_core::snapshot::{load_snapshot, AlgorithmSnapshot, Checkpointer, SnapshotLoad};
use aggclust_core::{RunBudget, RunOutcome};
use proptest::prelude::*;

/// A unique temp directory per test (proptest shrinks run concurrently).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "aggclust_ckpt_{tag}_{:?}",
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Run `algorithm` to the iteration cap with a checkpoint file, then resume
/// from whatever snapshot landed on disk and run to completion.
fn interrupt_then_resume(
    algorithm: &Algorithm,
    oracle: &DenseOracle,
    cap: u64,
    cadence: Duration,
    dir: &Path,
) -> RunOutcome {
    let path = dir.join("run.ckpt");
    std::fs::remove_file(&path).ok();
    let mut ckpt = Checkpointer::new(path.clone(), cadence);
    let capped = algorithm
        .run_resumable(
            oracle,
            &RunBudget::unlimited().with_max_iters(cap),
            None,
            Some(&mut ckpt),
        )
        .expect("capped run");
    if capped.status.is_converged() {
        return capped;
    }
    // If the interrupt hit before any checkpointable progress (e.g. during
    // the matrix build) there is no snapshot; resuming from nothing is a
    // fresh run, which must still match the uninterrupted one.
    let snapshot = match load_snapshot(&path) {
        SnapshotLoad::Loaded(s) => Some(s),
        SnapshotLoad::Missing => None,
        SnapshotLoad::Corrupt(reason) => panic!("checkpoint corrupt: {reason}"),
    };
    let mut ckpt = Checkpointer::new(path, cadence);
    algorithm
        .run_resumable(
            oracle,
            &RunBudget::unlimited(),
            snapshot.as_ref().map(|s| &s.state),
            Some(&mut ckpt),
        )
        .expect("resumed run")
}

fn clusterings_strategy() -> impl Strategy<Value = Vec<Clustering>> {
    (6usize..32).prop_flat_map(|n| {
        prop::collection::vec(
            prop::collection::vec(0u32..4, n).prop_map(Clustering::from_labels),
            2..5,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn localsearch_interrupt_at_k_resume_is_bit_identical(
        inputs in clusterings_strategy(),
        cap in 0u64..160,
        cadence_ms in 0u64..2,
        seed in 0u64..100,
    ) {
        let oracle = DenseOracle::from_clusterings(&inputs);
        // Random init exercises the RNG-state half of the snapshot: the
        // resumed run must not re-draw the initial assignment.
        let algorithm = Algorithm::LocalSearch(LocalSearchParams {
            init: LocalSearchInit::Random { k: 3, seed },
            ..Default::default()
        });
        let reference = algorithm
            .run_budgeted(&oracle, &RunBudget::unlimited())
            .expect("reference");
        let dir = temp_dir("ls");
        let resumed = interrupt_then_resume(
            &algorithm,
            &oracle,
            cap,
            Duration::from_millis(cadence_ms),
            &dir,
        );
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(&resumed.clustering, &reference.clustering);
        // Bit-identical cost, not approximately equal.
        prop_assert_eq!(
            correlation_cost(&oracle, &resumed.clustering).to_bits(),
            correlation_cost(&oracle, &reference.clustering).to_bits()
        );
    }

    #[test]
    fn agglomerative_interrupt_at_k_resume_is_bit_identical(
        inputs in clusterings_strategy(),
        cap in 0u64..40,
        cadence_ms in 0u64..2,
    ) {
        let oracle = DenseOracle::from_clusterings(&inputs);
        let algorithm = Algorithm::Agglomerative(AgglomerativeParams::default());
        let reference = algorithm
            .run_budgeted(&oracle, &RunBudget::unlimited())
            .expect("reference");
        let dir = temp_dir("agg");
        let resumed = interrupt_then_resume(
            &algorithm,
            &oracle,
            cap,
            Duration::from_millis(cadence_ms),
            &dir,
        );
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(&resumed.clustering, &reference.clustering);
        prop_assert_eq!(
            correlation_cost(&oracle, &resumed.clustering).to_bits(),
            correlation_cost(&oracle, &reference.clustering).to_bits()
        );
    }
}

/// Repeated interrupts — crash, resume, crash again — must still converge
/// to the uninterrupted answer. Caps grow per cycle because the iteration
/// cap is global across resumes (a resumed meter starts at the completed
/// count, so an unchanged cap would trip again without progress).
#[test]
fn chained_interrupts_and_resumes_converge_to_the_reference() {
    let inputs: Vec<Clustering> = (0..3u32)
        .map(|i| Clustering::from_labels((0..48u32).map(|v| ((v / 8) + i * (v % 2)) % 6).collect()))
        .collect();
    let oracle = DenseOracle::from_clusterings(&inputs);
    let algorithm = Algorithm::LocalSearch(LocalSearchParams {
        init: LocalSearchInit::Random { k: 4, seed: 9 },
        ..Default::default()
    });
    let reference = algorithm
        .run_budgeted(&oracle, &RunBudget::unlimited())
        .expect("reference");

    let dir = temp_dir("chain");
    let path = dir.join("run.ckpt");
    let mut resume = None;
    let mut outcome = None;
    for cycle in 1..=64u64 {
        let mut ckpt = Checkpointer::new(path.clone(), Duration::ZERO);
        let run = algorithm
            .run_resumable(
                &oracle,
                &RunBudget::unlimited().with_max_iters(cycle * 7),
                resume.as_ref(),
                Some(&mut ckpt),
            )
            .expect("cycle run");
        if run.status.is_converged() {
            outcome = Some(run);
            break;
        }
        resume = match load_snapshot(&path) {
            SnapshotLoad::Loaded(s) => Some(s.state),
            other => panic!("cycle {cycle}: no resumable checkpoint ({other:?})"),
        };
    }
    std::fs::remove_dir_all(&dir).ok();
    let outcome = outcome.expect("never converged within 64 cycles");
    assert_eq!(outcome.clustering, reference.clustering);
    assert_eq!(outcome.iterations, reference.iterations);
}

/// SAMPLING's per-node assignment phase (the long one at Census scale)
/// checkpoints and resumes through an on-disk snapshot round-trip.
#[test]
fn sampling_interrupt_resume_through_disk_is_bit_identical() {
    let inputs: Vec<Clustering> = (0..3u32)
        .map(|i| {
            Clustering::from_labels((0..90u32).map(|v| ((v / 15) + i * (v % 2)) % 8).collect())
        })
        .collect();
    let oracle = DenseOracle::from_clusterings(&inputs);
    let params = SamplingParams::new(
        30,
        Algorithm::Agglomerative(AgglomerativeParams::default()),
        13,
    );
    let reference = sampling(&oracle, &params);

    let dir = temp_dir("samp");
    let path = dir.join("run.ckpt");
    // Caps safely past the base phase's merges so the trip lands in the
    // resumable per-node phase (the documented bit-identity window).
    for cap in [31u64, 40, 55, 88] {
        std::fs::remove_file(&path).ok();
        let mut ckpt = Checkpointer::new(path.clone(), Duration::ZERO);
        let capped = sampling_resumable(
            &oracle,
            &params,
            &RunBudget::unlimited().with_max_iters(cap),
            None,
            Some(&mut ckpt),
        )
        .expect("capped");
        if capped.status.is_converged() {
            assert_eq!(capped.clustering, reference, "cap {cap}");
            continue;
        }
        let snapshot = match load_snapshot(&path) {
            SnapshotLoad::Loaded(s) => s,
            other => panic!("cap {cap}: {other:?}"),
        };
        let resume = match &snapshot.state {
            AlgorithmSnapshot::Sampling(s) => s,
            other => panic!("cap {cap}: wrong snapshot kind {other:?}"),
        };
        let mut ckpt = Checkpointer::new(path.clone(), Duration::ZERO);
        let resumed = sampling_resumable(
            &oracle,
            &params,
            &RunBudget::unlimited(),
            Some(resume),
            Some(&mut ckpt),
        )
        .expect("resumed");
        assert!(resumed.status.is_converged(), "cap {cap}");
        assert_eq!(resumed.clustering, reference, "cap {cap}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Memory governance
// ---------------------------------------------------------------------------

fn blocks_instance(n: usize) -> CorrelationInstance {
    let inputs: Vec<PartialClustering> = (0..3u32)
        .map(|i| {
            let c = Clustering::from_labels(
                (0..n as u32)
                    .map(|v| ((v / 10) + i * (v % 2)) % 7)
                    .collect(),
            );
            PartialClustering::from_total(&c)
        })
        .collect();
    CorrelationInstance::try_from_partial(inputs, MissingPolicy::default()).expect("instance")
}

#[test]
fn refused_dense_allocation_charges_nothing() {
    let instance = blocks_instance(200);
    let need = instance.dense_bytes();
    let budget = RunBudget::unlimited().with_mem_limit_bytes(need - 1);
    match instance.try_dense_oracle(&budget) {
        Err(Interrupt::MemoryExceeded { requested, limit }) => {
            assert_eq!(requested, need);
            assert_eq!(limit, need - 1);
        }
        other => panic!("expected MemoryExceeded, got {other:?}"),
    }
    // Refusal must not leak a partial charge: the gauge reads zero.
    assert_eq!(budget.mem_gauge().used_bytes(), 0);
}

#[test]
fn admitted_dense_oracle_holds_its_charge_until_drop() {
    let instance = blocks_instance(120);
    let need = instance.dense_bytes();
    let budget = RunBudget::unlimited().with_mem_limit_bytes(need + 1024);
    let oracle = instance.try_dense_oracle(&budget).expect("fits under cap");
    assert_eq!(budget.mem_gauge().used_bytes(), need);
    // A second matrix does not fit while the first is alive...
    assert!(matches!(
        instance.try_dense_oracle(&budget),
        Err(Interrupt::MemoryExceeded { .. })
    ));
    // ...and fits again once it is dropped.
    drop(oracle);
    assert_eq!(budget.mem_gauge().used_bytes(), 0);
    assert!(instance.try_dense_oracle(&budget).is_ok());
}
