//! Edge-case and stress tests for the core: degenerate instances, extreme
//! distances, label-space boundaries, and cross-algorithm consistency on
//! adversarial inputs.

use aggclust_core::algorithms::{
    agglomerative::agglomerative, balls::balls, furthest::furthest, local_search::local_search,
    pivot::pivot, sampling::sampling, AgglomerativeParams, Algorithm, BallsParams, FurthestParams,
    LocalSearchParams, PivotParams, SamplingParams,
};
use aggclust_core::clustering::Clustering;
use aggclust_core::cost::{correlation_cost, lower_bound, split_everything_cost};
use aggclust_core::instance::DenseOracle;

/// Every algorithm must handle the all-zeros instance (everyone together).
#[test]
fn all_zero_distances() {
    let n = 12;
    let oracle = DenseOracle::from_fn(n, |_, _| 0.0);
    let one = Clustering::one_cluster(n);
    assert_eq!(agglomerative(&oracle, AgglomerativeParams::paper()), one);
    assert_eq!(furthest(&oracle, FurthestParams::default()), one);
    assert_eq!(local_search(&oracle, LocalSearchParams::default()), one);
    assert_eq!(balls(&oracle, BallsParams::practical()), one);
    assert_eq!(pivot(&oracle, PivotParams::majority(1)), one);
    assert_eq!(lower_bound(&oracle), 0.0);
}

/// Every algorithm must handle the all-ones instance (everyone apart).
#[test]
fn all_one_distances() {
    let n = 12;
    let oracle = DenseOracle::from_fn(n, |_, _| 1.0);
    let singles = Clustering::singletons(n);
    assert_eq!(
        agglomerative(&oracle, AgglomerativeParams::paper()),
        singles
    );
    assert_eq!(local_search(&oracle, LocalSearchParams::default()), singles);
    assert_eq!(balls(&oracle, BallsParams::practical()), singles);
    assert_eq!(pivot(&oracle, PivotParams::majority(1)), singles);
    assert_eq!(split_everything_cost(&oracle), 0.0);
}

/// The maximally ambiguous instance (X ≡ ½): every clustering costs the
/// same, the lower bound is tight everywhere, and nothing crashes.
#[test]
fn all_half_distances() {
    let n = 10;
    let pairs = (n * (n - 1) / 2) as f64;
    let oracle = DenseOracle::from_fn(n, |_, _| 0.5);
    let expected = 0.5 * pairs;
    for c in [
        Clustering::one_cluster(n),
        Clustering::singletons(n),
        Clustering::from_labels((0..n as u32).map(|v| v % 3).collect()),
    ] {
        assert!((correlation_cost(&oracle, &c) - expected).abs() < 1e-9);
    }
    assert!((lower_bound(&oracle) - expected).abs() < 1e-9);
    // Algorithms return *some* valid clustering.
    assert_eq!(
        agglomerative(&oracle, AgglomerativeParams::paper()).len(),
        n
    );
    assert_eq!(local_search(&oracle, LocalSearchParams::default()).len(), n);
}

/// Two-object instances exercise every boundary branch.
#[test]
fn two_object_instances() {
    for (d, together) in [(0.0, true), (0.49, true), (0.51, false), (1.0, false)] {
        let oracle = DenseOracle::from_fn(2, |_, _| d);
        let c = agglomerative(&oracle, AgglomerativeParams::paper());
        assert_eq!(c.same_cluster(0, 1), together, "d = {d}");
        let ls = local_search(&oracle, LocalSearchParams::default());
        assert_eq!(ls.same_cluster(0, 1), together, "d = {d} (local search)");
    }
    // Exactly ½: both answers cost the same; just require validity.
    let oracle = DenseOracle::from_fn(2, |_, _| 0.5);
    assert_eq!(
        agglomerative(&oracle, AgglomerativeParams::paper()).len(),
        2
    );
}

/// Labels far above u32 ranges used in practice normalize correctly.
#[test]
fn huge_label_values_normalize() {
    let c = Clustering::from_labels(vec![u32::MAX, 0, u32::MAX, 4_000_000]);
    assert_eq!(c.labels(), &[0, 1, 0, 2]);
    assert_eq!(c.num_clusters(), 3);
}

/// A clustering with every object in its own cluster at large n keeps all
/// invariants (num_clusters, pairs_together, restrict).
#[test]
fn large_singleton_clustering() {
    let n = 50_000;
    let c = Clustering::singletons(n);
    assert_eq!(c.num_clusters(), n);
    assert_eq!(c.pairs_together(), 0);
    let sub = c.restrict(&[0, 777, 49_999]);
    assert_eq!(sub.num_clusters(), 3);
}

/// SAMPLING with sample size 1: the single sampled node forms one cluster,
/// the rest get assigned or become singletons; must not panic and must
/// cover all nodes.
#[test]
fn sampling_with_sample_of_one() {
    let inputs = vec![Clustering::from_labels((0..30u32).map(|v| v % 3).collect()); 3];
    let oracle = DenseOracle::from_clusterings(&inputs);
    let params = SamplingParams::new(
        1,
        Algorithm::Agglomerative(AgglomerativeParams::default()),
        9,
    );
    let c = sampling(&oracle, &params);
    assert_eq!(c.len(), 30);
}

/// Distances exactly at the ½ threshold: BALLS includes them in the ball
/// (the paper's "at most ½"), AGGLOMERATIVE does not merge at exactly ½
/// (strictly less). Both conventions are fixed behavior, pinned here.
#[test]
fn threshold_boundary_conventions() {
    let oracle = DenseOracle::from_fn(2, |_, _| 0.5);
    // Ball of node 0 contains node 1 (d ≤ ½); avg = ½ > α = 0.4 → singleton.
    let b = balls(&oracle, BallsParams::practical());
    assert_eq!(b.num_clusters(), 2);
    // But with α = ½ the ball is accepted.
    let b2 = balls(&oracle, BallsParams::with_alpha(0.5));
    assert_eq!(b2.num_clusters(), 1);
    // Agglomerative: merge requires avg < ½ strictly.
    let a = agglomerative(&oracle, AgglomerativeParams::paper());
    assert_eq!(a.num_clusters(), 2);
}

/// A block instance large enough to exercise the NN-chain and LOCALSEARCH
/// bookkeeping at scale, with a known optimum.
#[test]
fn medium_scale_block_instance() {
    let n = 600;
    let truth = Clustering::from_labels((0..n as u32).map(|v| v % 4).collect());
    let inputs = vec![truth.clone(); 5];
    let oracle = DenseOracle::from_clusterings(&inputs);
    for algo in [
        Algorithm::Agglomerative(AgglomerativeParams::default()),
        Algorithm::Balls(BallsParams::practical()),
        Algorithm::LocalSearch(LocalSearchParams::default()),
        Algorithm::Furthest(FurthestParams::default()),
    ] {
        assert_eq!(algo.run(&oracle), truth, "{}", algo.name());
    }
    assert_eq!(lower_bound(&oracle), 0.0);
}
