//! Golden conformance fixtures (DESIGN.md §6f): three tiny hand-computed
//! instances checked in as JSON, with *exact* expected values — `X_uv` as
//! integer fractions, per-input disagreement distances `d_V`, and the
//! total disagreement `D(C)`. Both the packed kernel paths and the scalar
//! reference implementations must reproduce every value to the bit; the
//! fixtures pin the semantics independently of either implementation.
//!
//! The crate has no JSON dependency, so a ~60-line recursive-descent
//! parser lives here (tests only — the library itself never parses JSON).

use aggclust_core::clustering::{Clustering, PartialClustering};
use aggclust_core::distance::{disagreement_distance, total_disagreement};
use aggclust_core::instance::{ClusteringsOracle, DenseOracle, DistanceOracle, MissingPolicy};
use aggclust_core::kernels::reference;

// ---------------------------------------------------------------- JSON --

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> f64 {
        match self {
            Json::Num(x) => *x,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn as_i64(&self) -> i64 {
        self.as_f64() as i64
    }

    fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }

    fn as_i64_vec(&self) -> Vec<i64> {
        self.as_arr().iter().map(Json::as_i64).collect()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value();
        p.skip_ws();
        assert_eq!(p.pos, p.bytes.len(), "trailing garbage in fixture");
        value
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) {
        self.skip_ws();
        assert_eq!(
            self.bytes.get(self.pos).copied(),
            Some(b),
            "expected {:?} at byte {}",
            b as char,
            self.pos
        );
        self.pos += 1;
    }

    fn value(&mut self) -> Json {
        self.skip_ws();
        match self.bytes[self.pos] {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Json {
        assert!(
            self.bytes[self.pos..].starts_with(text.as_bytes()),
            "bad literal at byte {}",
            self.pos
        );
        self.pos += text.len();
        value
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes[self.pos] == b'}' {
            self.pos += 1;
            return Json::Obj(fields);
        }
        loop {
            self.skip_ws();
            let key = self.string();
            self.eat(b':');
            fields.push((key, self.value()));
            self.skip_ws();
            match self.bytes[self.pos] {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Obj(fields);
                }
                other => panic!("expected ',' or '}}', got {:?}", other as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes[self.pos] == b']' {
            self.pos += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            self.skip_ws();
            match self.bytes[self.pos] {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Arr(items);
                }
                other => panic!("expected ',' or ']', got {:?}", other as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let start = self.pos;
        while self.bytes[self.pos] != b'"' {
            assert_ne!(self.bytes[self.pos], b'\\', "fixtures use no escapes");
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("fixtures are UTF-8")
            .to_string();
        self.pos += 1;
        s
    }

    fn number(&mut self) -> Json {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        Json::Num(text.parse::<f64>().expect("bad number in fixture"))
    }
}

// ------------------------------------------------------------ fixtures --

fn total_clusterings(fixture: &Json) -> Vec<Clustering> {
    fixture
        .get("clusterings")
        .expect("clusterings")
        .as_arr()
        .iter()
        .map(|labels| {
            Clustering::from_labels(labels.as_i64_vec().iter().map(|&l| l as u32).collect())
        })
        .collect()
}

fn partial_clusterings(fixture: &Json) -> Vec<PartialClustering> {
    fixture
        .get("clusterings")
        .expect("clusterings")
        .as_arr()
        .iter()
        .map(|labels| {
            PartialClustering::from_labels(
                labels
                    .as_i64_vec()
                    .iter()
                    .map(|&l| if l < 0 { None } else { Some(l as u32) })
                    .collect(),
            )
        })
        .collect()
}

/// Expected condensed `X_uv` values as exact fractions `num[i] / den`.
fn expected_x(fixture: &Json, num_key: &str, den_key: &str) -> Vec<f64> {
    let den = fixture.get(den_key).expect(den_key).as_f64();
    fixture
        .get(num_key)
        .expect(num_key)
        .as_i64_vec()
        .iter()
        .map(|&n| n as f64 / den)
        .collect()
}

fn check_condensed_bits(n: usize, expected: &[f64], got: impl Fn(usize, usize) -> f64, ctx: &str) {
    assert_eq!(expected.len(), n * (n - 1) / 2, "{ctx}: fixture length");
    let mut i = 0usize;
    for u in 0..n {
        for v in (u + 1)..n {
            assert_eq!(
                got(u, v).to_bits(),
                expected[i].to_bits(),
                "{ctx}: X[{u},{v}] = {} but fixture says {}",
                got(u, v),
                expected[i]
            );
            i += 1;
        }
    }
}

fn check_dv_and_total(fixture: &Json, cs: &[Clustering]) {
    let candidate = Clustering::from_labels(
        fixture
            .get("candidate")
            .expect("candidate")
            .as_i64_vec()
            .iter()
            .map(|&l| l as u32)
            .collect(),
    );
    let expected_dv = fixture.get("d_v").expect("d_v").as_i64_vec();
    assert_eq!(expected_dv.len(), cs.len());
    for (c, &dv) in cs.iter().zip(&expected_dv) {
        assert_eq!(disagreement_distance(c, &candidate), dv as u64);
    }
    assert_eq!(
        total_disagreement(cs, &candidate),
        fixture.get("total_disagreement").expect("total").as_i64() as u64
    );
}

#[test]
fn golden_figure1_total_instance() {
    let fixture = Parser::parse(include_str!("golden/figure1.json"));
    let cs = total_clusterings(&fixture);
    let n = cs[0].len();
    let expected = expected_x(&fixture, "x_num", "x_den");
    let dense = DenseOracle::from_clusterings(&cs);
    check_condensed_bits(n, &expected, |u, v| dense.dist(u, v), "figure1 packed");
    check_condensed_bits(
        n,
        &expected,
        |u, v| reference::xuv_total(&cs, u, v),
        "figure1 reference",
    );
    check_dv_and_total(&fixture, &cs);
}

#[test]
fn golden_weighted_instance() {
    let fixture = Parser::parse(include_str!("golden/weighted.json"));
    let cs = total_clusterings(&fixture);
    let weights: Vec<f64> = fixture
        .get("weights")
        .expect("weights")
        .as_arr()
        .iter()
        .map(Json::as_f64)
        .collect();
    let n = cs[0].len();
    let expected = expected_x(&fixture, "x_num", "x_den");
    let dense = DenseOracle::from_weighted_clusterings(&cs, &weights);
    check_condensed_bits(n, &expected, |u, v| dense.dist(u, v), "weighted packed");
    check_condensed_bits(
        n,
        &expected,
        |u, v| reference::xuv_weighted(&cs, &weights, u, v),
        "weighted reference",
    );
    check_dv_and_total(&fixture, &cs);
}

#[test]
fn golden_partial_instance_under_both_policies() {
    let fixture = Parser::parse(include_str!("golden/partial_coin.json"));
    let ps = partial_clusterings(&fixture);
    let n = ps[0].len();
    let p = fixture.get("coin_p_num").expect("p num").as_f64()
        / fixture.get("coin_p_den").expect("p den").as_f64();

    let coin = MissingPolicy::Coin(p);
    let expected_coin = expected_x(&fixture, "coin_x_num", "coin_x_den");
    let oracle = ClusteringsOracle::new(ps.clone(), coin);
    check_condensed_bits(n, &expected_coin, |u, v| oracle.dist(u, v), "coin packed");
    check_condensed_bits(
        n,
        &expected_coin,
        |u, v| reference::xuv_partial(&ps, coin, u, v),
        "coin reference",
    );

    let expected_ignore: Vec<f64> = fixture
        .get("ignore_x")
        .expect("ignore_x")
        .as_arr()
        .iter()
        .map(|pair| {
            let frac = pair.as_i64_vec();
            frac[0] as f64 / frac[1] as f64
        })
        .collect();
    let oracle = ClusteringsOracle::new(ps.clone(), MissingPolicy::Ignore);
    check_condensed_bits(
        n,
        &expected_ignore,
        |u, v| oracle.dist(u, v),
        "ignore packed",
    );
    check_condensed_bits(
        n,
        &expected_ignore,
        |u, v| reference::xuv_partial(&ps, MissingPolicy::Ignore, u, v),
        "ignore reference",
    );
}
