//! Differential conformance suite for the packed disagreement kernels
//! (DESIGN.md §6f–§6g): every distance the packed path can produce is
//! compared bit-for-bit (`f64::to_bits`) against the independent scalar
//! reference implementations in `aggclust_core::kernels::reference`,
//! across a size grid that straddles every layout boundary (empty, single
//! object, word boundaries at m = 63/64/65, lane-width boundaries at
//! 65535/65536 clusters), across thread counts, and — via
//! [`dispatch::with_forced_tier`] — under **every SIMD dispatch tier the
//! host can reach** (scalar, SWAR, SSE2, AVX2, NEON where available).

use aggclust_core::clustering::{Clustering, PartialClustering};
use aggclust_core::instance::{ClusteringsOracle, DenseOracle, DistanceOracle, MissingPolicy};
use aggclust_core::kernels::{dispatch, reference, LaneWidth};
use aggclust_core::parallel::with_num_threads;
use proptest::prelude::*;

/// The size grid from the issue: object counts crossing the trivial and
/// multi-chunk regimes, clustering counts straddling the 4-lanes-per-word
/// boundary.
const N_GRID: [usize; 5] = [0, 1, 2, 257, 1024];
const M_GRID: [usize; 5] = [1, 2, 63, 64, 65];

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_clusterings(n: usize, m: usize, k: u32, seed: u64) -> Vec<Clustering> {
    let mut state = seed;
    (0..m)
        .map(|_| {
            Clustering::from_labels(
                (0..n)
                    .map(|_| (splitmix(&mut state) % k as u64) as u32)
                    .collect(),
            )
        })
        .collect()
}

fn random_partials(
    n: usize,
    m: usize,
    k: u32,
    missing_pct: u64,
    seed: u64,
) -> Vec<PartialClustering> {
    let mut state = seed;
    (0..m)
        .map(|_| {
            PartialClustering::from_labels(
                (0..n)
                    .map(|_| {
                        if splitmix(&mut state) % 100 < missing_pct {
                            None
                        } else {
                            Some((splitmix(&mut state) % k as u64) as u32)
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

fn assert_bits_eq(got: f64, want: f64, ctx: &str) {
    assert_eq!(
        got.to_bits(),
        want.to_bits(),
        "{ctx}: packed {got} != reference {want}"
    );
}

#[test]
fn packed_dense_matches_reference_across_the_size_grid_under_every_tier() {
    for &n in &N_GRID {
        for &m in &M_GRID {
            // Cluster counts vary with the cell so tiny-k (dense ties) and
            // larger-k (mostly separated) regimes are both covered.
            let k = 1 + ((n + 7 * m) % 17) as u32;
            let cs = random_clusterings(n, m, k, (n as u64) << 32 | m as u64);
            // The reference values are tier-independent; compute them once
            // per cell and replay against every tier's packed build.
            let mut want = Vec::with_capacity(n.saturating_sub(1) * n / 2);
            for u in 0..n {
                for v in (u + 1)..n {
                    want.push(reference::xuv_total(&cs, u, v));
                }
            }
            for tier in dispatch::reachable_tiers() {
                let dense = dispatch::with_forced_tier(tier, || DenseOracle::from_clusterings(&cs));
                assert_eq!(dense.len(), n);
                let mut i = 0usize;
                for u in 0..n {
                    for v in (u + 1)..n {
                        assert_bits_eq(
                            dense.dist(u, v),
                            want[i],
                            &format!("tier={} n={n} m={m} pair ({u},{v})", tier.name()),
                        );
                        i += 1;
                    }
                }
            }
        }
    }
}

#[test]
fn packed_lazy_matches_reference_across_the_size_grid_under_every_tier() {
    for &n in &N_GRID {
        if n == 0 {
            continue; // ClusteringsOracle rejects zero-length inputs lists only; n=0 is fine, but there are no pairs.
        }
        for &m in &M_GRID {
            let k = 1 + ((3 * n + m) % 13) as u32;
            let ps = random_partials(n, m, k, 20, (m as u64) << 32 | n as u64);
            for policy in [MissingPolicy::Ignore, MissingPolicy::Coin(0.5)] {
                // The full grid is quadratic; stride the larger sizes and
                // compute each reference value once across all tiers.
                let stride = if n >= 1024 { 7 } else { 1 };
                let mut pairs = Vec::new();
                let mut pair = 0usize;
                for u in 0..n {
                    for v in (u + 1)..n {
                        pair += 1;
                        if pair.is_multiple_of(stride) {
                            pairs.push((u, v, reference::xuv_partial(&ps, policy, u, v)));
                        }
                    }
                }
                for tier in dispatch::reachable_tiers() {
                    let oracle = dispatch::with_forced_tier(tier, || {
                        ClusteringsOracle::new(ps.clone(), policy)
                    });
                    for &(u, v, want) in &pairs {
                        assert_bits_eq(
                            oracle.dist(u, v),
                            want,
                            &format!("tier={} n={n} m={m} {policy:?} pair ({u},{v})", tier.name()),
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn packed_weighted_matches_reference(
        (n, m, seed) in (2usize..40, 1usize..10, any::<u64>())
    ) {
        // A duplicate-prone weight palette so equal-weight groups of every
        // size (packed blocks and the scalar tail) actually occur.
        const PALETTE: [f64; 5] = [0.0, 0.25, 1.0, 1.5, 2.0];
        let mut state = seed;
        let cs = random_clusterings(n, m, 5, splitmix(&mut state));
        let mut weights: Vec<f64> = (0..m)
            .map(|_| PALETTE[(splitmix(&mut state) % PALETTE.len() as u64) as usize])
            .collect();
        if weights.iter().sum::<f64>() <= 0.0 {
            weights[0] = 1.0;
        }
        for tier in dispatch::reachable_tiers() {
            let dense = dispatch::with_forced_tier(tier, || {
                DenseOracle::from_weighted_clusterings(&cs, &weights)
            });
            for u in 0..n {
                for v in (u + 1)..n {
                    assert_bits_eq(
                        dense.dist(u, v),
                        reference::xuv_weighted(&cs, &weights, u, v),
                        &format!(
                            "tier={} n={n} weights={weights:?} pair ({u},{v})",
                            tier.name()
                        ),
                    );
                }
            }
        }
    }

    fn packed_partial_matches_reference(
        (n, m, seed) in (2usize..40, 1usize..8, any::<u64>())
    ) {
        let mut state = seed;
        let ps = random_partials(n, m, 4, 25, splitmix(&mut state));
        let coins = [0.0, 0.25, 0.5, 1.0];
        let p = coins[(splitmix(&mut state) % coins.len() as u64) as usize];
        for policy in [MissingPolicy::Ignore, MissingPolicy::Coin(p)] {
            for tier in dispatch::reachable_tiers() {
                let oracle =
                    dispatch::with_forced_tier(tier, || ClusteringsOracle::new(ps.clone(), policy));
                for u in 0..n {
                    for v in (u + 1)..n {
                        assert_bits_eq(
                            oracle.dist(u, v),
                            reference::xuv_partial(&ps, policy, u, v),
                            &format!(
                                "tier={} n={n} m={m} {policy:?} pair ({u},{v})",
                                tier.name()
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// The strongest cross-check in the suite: the forced-**scalar** build at
/// one thread is the baseline, and every reachable tier (SWAR and each
/// SIMD level) at 1, 2, and 4 threads must reproduce it bit-for-bit —
/// both totals and weighted sums. This is the forced-scalar vs
/// forced-SIMD differential from DESIGN.md §6g.
#[test]
fn every_tier_matches_forced_scalar_across_thread_counts() {
    for (n, m) in [(257usize, 65usize), (1024, 2)] {
        let cs = random_clusterings(n, m, 16, 99);
        let weights: Vec<f64> = (0..m).map(|i| [1.0, 2.0][i % 2]).collect();
        let base = dispatch::with_forced_tier(dispatch::Tier::Scalar, || {
            with_num_threads(1, || DenseOracle::from_clusterings(&cs))
        });
        let base_w = dispatch::with_forced_tier(dispatch::Tier::Scalar, || {
            with_num_threads(1, || DenseOracle::from_weighted_clusterings(&cs, &weights))
        });
        for tier in dispatch::reachable_tiers() {
            for threads in [1usize, 2, 4] {
                let (other, other_w) = dispatch::with_forced_tier(tier, || {
                    with_num_threads(threads, || {
                        (
                            DenseOracle::from_clusterings(&cs),
                            DenseOracle::from_weighted_clusterings(&cs, &weights),
                        )
                    })
                });
                for u in 0..n {
                    for v in (u + 1)..n {
                        assert_eq!(
                            base.dist(u, v).to_bits(),
                            other.dist(u, v).to_bits(),
                            "tier={} n={n} m={m} t={threads} pair ({u},{v})",
                            tier.name()
                        );
                        assert_eq!(
                            base_w.dist(u, v).to_bits(),
                            other_w.dist(u, v).to_bits(),
                            "weighted tier={} n={n} m={m} t={threads} pair ({u},{v})",
                            tier.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn lane_boundary_cluster_counts_pick_the_right_width() {
    // The largest lane code equals the cluster count: 65535 clusters is the
    // last instance that fits u16 lanes, 65536 forces the u32 fallback.
    for (k, width) in [(65_535u32, LaneWidth::U16), (65_536, LaneWidth::U32)] {
        let n = k as usize + 1; // labels v % k give exactly k clusters
        let c1 = Clustering::from_labels((0..n).map(|v| (v as u32) % k).collect());
        let c2 = Clustering::from_labels((0..n).map(|v| (v as u32) % 7).collect());
        assert_eq!(c1.num_clusters(), k as usize);
        let ps = [
            PartialClustering::from_total(&c1),
            PartialClustering::from_total(&c2),
        ];
        for tier in dispatch::reachable_tiers() {
            let oracle = dispatch::with_forced_tier(tier, || {
                ClusteringsOracle::from_total(&[c1.clone(), c2.clone()])
            });
            assert_eq!(oracle.packed().width(), width, "k={k}");
            // The full O(n²) sweep is infeasible at this size; a
            // deterministic sample plus the wrap-around pair covers both
            // lane widths under each tier.
            let mut state = 0x5eed ^ k as u64;
            for case in 0..500 {
                let u = (splitmix(&mut state) % n as u64) as usize;
                let v = (splitmix(&mut state) % n as u64) as usize;
                if u == v {
                    continue;
                }
                assert_bits_eq(
                    oracle.dist(u, v),
                    reference::xuv_partial(&ps, oracle.policy(), u, v),
                    &format!("tier={} k={k} case={case} pair ({u},{v})", tier.name()),
                );
            }
            // Objects 0 and k wrap onto the same label in c1, different in c2.
            assert_eq!(oracle.dist(0, k as usize), 0.5);
        }
    }
}

#[test]
fn empty_and_singleton_instances() {
    let cs = random_clusterings(0, 3, 4, 11);
    assert_eq!(DenseOracle::from_clusterings(&cs).len(), 0);
    let cs = random_clusterings(1, 3, 4, 12);
    let dense = DenseOracle::from_clusterings(&cs);
    assert_eq!(dense.len(), 1);
    assert_eq!(dense.dist(0, 0), 0.0);
}
