//! Metamorphic invariants of the distance table `X_uv` (DESIGN.md §6f):
//! properties the packed kernels must preserve under transformations of
//! the input whose effect on the output is known exactly — the triangle
//! inequality claimed in §3 of the paper, invariance under per-clustering
//! label renaming, equivariance under object permutation, and the
//! weighted/repeated-input equivalence. Where a transformation changes
//! nothing, the comparison is bit-exact (`f64::to_bits`). Every property
//! runs under every SIMD dispatch tier the host can reach (DESIGN.md
//! §6g), via [`dispatch::with_forced_tier`].

use aggclust_core::clustering::Clustering;
use aggclust_core::instance::{DenseOracle, DistanceOracle};
use aggclust_core::kernels::dispatch;
use proptest::prelude::*;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_clusterings(n: usize, m: usize, k: u32, seed: u64) -> Vec<Clustering> {
    let mut state = seed;
    (0..m)
        .map(|_| {
            Clustering::from_labels(
                (0..n)
                    .map(|_| (splitmix(&mut state) % k as u64) as u32)
                    .collect(),
            )
        })
        .collect()
}

fn random_permutation(len: usize, state: &mut u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        let j = (splitmix(state) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Paper §3: the fraction-of-separating-clusterings distances satisfy
    /// the triangle inequality (each indicator does, and X_uv is their
    /// average).
    fn xuv_satisfies_the_triangle_inequality(
        (n, m, seed) in (3usize..24, 1usize..7, any::<u64>())
    ) {
        let cs = random_clusterings(n, m, 5, seed);
        for tier in dispatch::reachable_tiers() {
            let x = dispatch::with_forced_tier(tier, || DenseOracle::from_clusterings(&cs));
            for u in 0..n {
                for v in 0..n {
                    for w in 0..n {
                        prop_assert!(
                            x.dist(u, w) <= x.dist(u, v) + x.dist(v, w) + 1e-12,
                            "tier={} triangle violated at ({u},{v},{w})", tier.name()
                        );
                    }
                }
            }
        }
    }

    /// Renaming the clusters inside each input clustering does not change
    /// which pairs it separates, so X_uv is bit-identical.
    fn xuv_invariant_under_label_permutation(
        (n, m, seed) in (2usize..30, 1usize..7, any::<u64>())
    ) {
        let mut state = seed;
        let cs = random_clusterings(n, m, 6, splitmix(&mut state));
        let renamed: Vec<Clustering> = cs
            .iter()
            .map(|c| {
                let k = c.num_clusters().max(1);
                let perm = random_permutation(k, &mut state);
                Clustering::from_labels(
                    c.labels().iter().map(|&l| perm[l as usize] as u32).collect(),
                )
            })
            .collect();
        for tier in dispatch::reachable_tiers() {
            let (x, y) = dispatch::with_forced_tier(tier, || {
                (
                    DenseOracle::from_clusterings(&cs),
                    DenseOracle::from_clusterings(&renamed),
                )
            });
            for u in 0..n {
                for v in (u + 1)..n {
                    prop_assert_eq!(
                        x.dist(u, v).to_bits(),
                        y.dist(u, v).to_bits(),
                        "tier={} label renaming changed X[{},{}]", tier.name(), u, v
                    );
                }
            }
        }
    }

    /// Permuting the objects permutes the distance table the same way:
    /// X'(π(u), π(v)) = X(u, v), bit-exactly.
    fn xuv_equivariant_under_object_permutation(
        (n, m, seed) in (2usize..30, 1usize..7, any::<u64>())
    ) {
        let mut state = seed;
        let cs = random_clusterings(n, m, 5, splitmix(&mut state));
        let pi = random_permutation(n, &mut state);
        let permuted: Vec<Clustering> = cs
            .iter()
            .map(|c| {
                let mut labels = vec![0u32; n];
                for v in 0..n {
                    labels[pi[v]] = c.label(v);
                }
                Clustering::from_labels(labels)
            })
            .collect();
        for tier in dispatch::reachable_tiers() {
            let (x, y) = dispatch::with_forced_tier(tier, || {
                (
                    DenseOracle::from_clusterings(&cs),
                    DenseOracle::from_clusterings(&permuted),
                )
            });
            for u in 0..n {
                for v in (u + 1)..n {
                    prop_assert_eq!(
                        x.dist(u, v).to_bits(),
                        y.dist(pi[u], pi[v]).to_bits(),
                        "tier={} object permutation broke X[{},{}]", tier.name(), u, v
                    );
                }
            }
        }
    }

    /// Duplicating an input `w` times and weighting every copy 1 is the
    /// same instance as the unweighted duplicated list, and both equal the
    /// original list under integer weights — all three bit-identical
    /// (integer separation counts below 2^53 divide exactly the same way).
    fn unit_weighted_duplicates_equal_integer_weights(
        (n, m, seed) in (2usize..25, 1usize..5, any::<u64>())
    ) {
        let mut state = seed;
        let cs = random_clusterings(n, m, 4, splitmix(&mut state));
        let mults: Vec<usize> = (0..m).map(|_| 1 + (splitmix(&mut state) % 3) as usize).collect();
        let duplicated: Vec<Clustering> = cs
            .iter()
            .zip(&mults)
            .flat_map(|(c, &k)| std::iter::repeat_n(c.clone(), k))
            .collect();
        let unit_weights = vec![1.0; duplicated.len()];
        let int_weights: Vec<f64> = mults.iter().map(|&k| k as f64).collect();
        for tier in dispatch::reachable_tiers() {
            let (unweighted, unit_weighted, int_weighted) =
                dispatch::with_forced_tier(tier, || {
                    (
                        DenseOracle::from_clusterings(&duplicated),
                        DenseOracle::from_weighted_clusterings(&duplicated, &unit_weights),
                        DenseOracle::from_weighted_clusterings(&cs, &int_weights),
                    )
                });
            for u in 0..n {
                for v in (u + 1)..n {
                    prop_assert_eq!(
                        unit_weighted.dist(u, v).to_bits(),
                        unweighted.dist(u, v).to_bits(),
                        "tier={} w=1 duplicates diverged at ({},{})", tier.name(), u, v
                    );
                    prop_assert_eq!(
                        int_weighted.dist(u, v).to_bits(),
                        unweighted.dist(u, v).to_bits(),
                        "tier={} integer weights diverged from repetition at ({},{})",
                        tier.name(), u, v
                    );
                }
            }
        }
    }
}
