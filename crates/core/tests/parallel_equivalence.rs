//! Thread-count equivalence tests for the `parallel` layer.
//!
//! The contract (see `aggclust_core::parallel`) is that every parallel
//! kernel is *bit-identical* at any thread count: chunk boundaries depend
//! only on problem size, floating-point partials are combined in a fixed
//! order, and tie-breaks mirror the serial scans. These tests pin that
//! contract by running the oracle construction, the cost functions, and all
//! four O(n²) algorithms under an in-process 1-thread vs 4-thread override
//! and demanding identical bits / identical labels.
//!
//! Instance sizes are chosen to cross the internal chunking thresholds
//! (`MIN_CHUNK_ITEMS = 1024` rows, `MIN_CHUNK_PAIRS = 8192` pairs, the
//! LOCALSEARCH prefetch gate at n = 2048, the BALLS scan gate at 4096) so
//! the multi-chunk code paths actually execute with several worker threads.

use aggclust_core::algorithms::{
    agglomerative::agglomerative, balls::balls, furthest::furthest, local_search::local_search,
    AgglomerativeParams, BallsParams, FurthestParams, LocalSearchInit, LocalSearchParams,
};
use aggclust_core::clustering::Clustering;
use aggclust_core::cost::{correlation_cost, lower_bound, split_everything_cost, within_cost};
use aggclust_core::instance::DenseOracle;
use aggclust_core::parallel::with_num_threads;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `m` noisy copies of a planted `k`-clustering over `n` objects: each
/// label survives with probability 1 − noise, otherwise resamples.
fn noisy_inputs(n: usize, m: usize, k: u32, noise: f64, seed: u64) -> Vec<Clustering> {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    (0..m)
        .map(|_| {
            Clustering::from_labels(
                truth
                    .iter()
                    .map(|&t| {
                        if rng.gen_bool(noise) {
                            rng.gen_range(0..k)
                        } else {
                            t
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn oracle_construction_is_thread_invariant() {
    // n = 1500 → ~1.1M pairs → well past MIN_CHUNK_PAIRS, so the condensed
    // fill runs multi-chunk under 4 threads.
    let inputs = noisy_inputs(1500, 6, 8, 0.2, 7);
    let serial = with_num_threads(1, || DenseOracle::from_clusterings(&inputs));
    let threaded = with_num_threads(4, || DenseOracle::from_clusterings(&inputs));
    let n = serial.len();
    assert_eq!(n, threaded.len());
    for u in 0..n {
        for v in (u + 1)..n {
            assert_eq!(
                serial.dist(u, v).to_bits(),
                threaded.dist(u, v).to_bits(),
                "dist({u},{v}) differs across thread counts"
            );
        }
    }
}

use aggclust_core::instance::DistanceOracle;

#[test]
fn cost_functions_are_thread_invariant() {
    let inputs = noisy_inputs(1500, 5, 6, 0.25, 11);
    let oracle = DenseOracle::from_clusterings(&inputs);
    let candidate = inputs[0].clone();
    let serial = with_num_threads(1, || {
        [
            correlation_cost(&oracle, &candidate),
            split_everything_cost(&oracle),
            within_cost(&oracle, &candidate),
            lower_bound(&oracle),
        ]
    });
    let threaded = with_num_threads(4, || {
        [
            correlation_cost(&oracle, &candidate),
            split_everything_cost(&oracle),
            within_cost(&oracle, &candidate),
            lower_bound(&oracle),
        ]
    });
    for (name, (s, t)) in ["correlation", "split", "within", "lower_bound"]
        .iter()
        .zip(serial.iter().zip(threaded.iter()))
    {
        assert_eq!(s.to_bits(), t.to_bits(), "{name} cost differs");
        assert!((s - t).abs() <= 1e-9); // the ISSUE-level tolerance, implied
    }
}

#[test]
fn local_search_is_thread_invariant_across_prefetch_gate() {
    // n = 2200 crosses the PREFETCH_MIN_N = 2048 row-block gate; n = 300
    // stays below it. Both must produce identical labels at 1 vs 4 threads.
    for (n, seed) in [(2200usize, 3u64), (300, 4)] {
        let inputs = noisy_inputs(n, 4, 10, 0.3, seed);
        let oracle = DenseOracle::from_clusterings(&inputs);
        let params = LocalSearchParams {
            init: LocalSearchInit::Random { k: 12, seed: 99 },
            max_passes: 3,
            epsilon: 1e-9,
        };
        let serial = with_num_threads(1, || local_search(&oracle, params.clone()));
        let threaded = with_num_threads(4, || local_search(&oracle, params.clone()));
        assert_eq!(serial, threaded, "n = {n}");
        let cs = with_num_threads(1, || correlation_cost(&oracle, &serial));
        let ct = with_num_threads(4, || correlation_cost(&oracle, &threaded));
        assert_eq!(cs.to_bits(), ct.to_bits());
    }
}

#[test]
fn balls_is_thread_invariant_across_scan_gate() {
    // First ball scan sees n − 1 = 4399 ≥ 4096 candidates → parallel row
    // buffer; later scans shrink below the gate → serial path. Identical
    // labels either way.
    let inputs = noisy_inputs(4400, 3, 5, 0.15, 21);
    let oracle = DenseOracle::from_clusterings(&inputs);
    let serial = with_num_threads(1, || balls(&oracle, BallsParams::practical()));
    let threaded = with_num_threads(4, || balls(&oracle, BallsParams::practical()));
    assert_eq!(serial, threaded);
}

#[test]
fn agglomerative_is_thread_invariant() {
    let inputs = noisy_inputs(900, 4, 7, 0.25, 31);
    let oracle = DenseOracle::from_clusterings(&inputs);
    let params = AgglomerativeParams::paper();
    let serial = with_num_threads(1, || agglomerative(&oracle, params));
    let threaded = with_num_threads(4, || agglomerative(&oracle, params));
    assert_eq!(serial, threaded);
}

#[test]
fn furthest_is_thread_invariant() {
    let inputs = noisy_inputs(1300, 4, 9, 0.3, 41);
    let oracle = DenseOracle::from_clusterings(&inputs);
    let serial = with_num_threads(1, || furthest(&oracle, FurthestParams::default()));
    let threaded = with_num_threads(4, || furthest(&oracle, FurthestParams::default()));
    assert_eq!(serial, threaded);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized small instances: every algorithm and every cost agrees
    /// bit-for-bit between 1 and 4 threads.
    #[test]
    fn algorithms_thread_invariant_on_random_instances(
        labels in prop::collection::vec(
            prop::collection::vec(0u32..6, 40), 2..5
        )
    ) {
        let inputs: Vec<Clustering> =
            labels.into_iter().map(Clustering::from_labels).collect();
        let oracle = DenseOracle::from_clusterings(&inputs);
        let run = |threads: usize| {
            with_num_threads(threads, || {
                (
                    balls(&oracle, BallsParams::practical()),
                    agglomerative(&oracle, AgglomerativeParams::paper()),
                    furthest(&oracle, FurthestParams::default()),
                    local_search(&oracle, LocalSearchParams::default()),
                    lower_bound(&oracle).to_bits(),
                )
            })
        };
        prop_assert_eq!(run(1), run(4));
    }
}
