//! Property-based tests for the core invariants of clustering aggregation.

use aggclust_core::algorithms::{
    agglomerative::agglomerative, balls::balls, best::best_clustering, furthest::furthest,
    local_search::local_search_from, AgglomerativeParams, BallsParams, FurthestParams,
};
use aggclust_core::clustering::Clustering;
use aggclust_core::cost::{correlation_cost, lower_bound};
use aggclust_core::distance::{
    disagreement_distance, disagreement_distance_naive, total_disagreement,
};
use aggclust_core::exact::optimal_clustering;
use aggclust_core::instance::{DenseOracle, DistanceOracle};
use proptest::prelude::*;

/// Strategy: a clustering of `n` objects with at most `kmax` clusters.
fn clustering_strategy(n: usize, kmax: u32) -> impl Strategy<Value = Clustering> {
    prop::collection::vec(0..kmax, n).prop_map(Clustering::from_labels)
}

/// Strategy: a set of `m` clusterings over the same `n` objects.
fn clusterings_strategy(
    n: usize,
    m: std::ops::Range<usize>,
    kmax: u32,
) -> impl Strategy<Value = Vec<Clustering>> {
    prop::collection::vec(clustering_strategy(n, kmax), m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn contingency_distance_matches_naive(
        (a, b) in (2usize..20).prop_flat_map(|n| {
            (clustering_strategy(n, 5), clustering_strategy(n, 5))
        })
    ) {
        prop_assert_eq!(
            disagreement_distance(&a, &b),
            disagreement_distance_naive(&a, &b)
        );
    }

    #[test]
    fn disagreement_distance_is_a_metric(
        (a, b, c) in (2usize..14).prop_flat_map(|n| {
            (
                clustering_strategy(n, 4),
                clustering_strategy(n, 4),
                clustering_strategy(n, 4),
            )
        })
    ) {
        // Identity of indiscernibles (one direction), symmetry, triangle.
        prop_assert_eq!(disagreement_distance(&a, &a), 0);
        prop_assert_eq!(disagreement_distance(&a, &b), disagreement_distance(&b, &a));
        prop_assert!(
            disagreement_distance(&a, &c)
                <= disagreement_distance(&a, &b) + disagreement_distance(&b, &c)
        );
    }

    #[test]
    fn xuv_satisfies_triangle_inequality(
        inputs in (3usize..10).prop_flat_map(|n| clusterings_strategy(n, 1..6, 4))
    ) {
        let oracle = DenseOracle::from_clusterings(&inputs);
        let n = oracle.len();
        for u in 0..n {
            for v in 0..n {
                for w in 0..n {
                    prop_assert!(
                        oracle.dist(u, w) <= oracle.dist(u, v) + oracle.dist(v, w) + 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn aggregation_cost_is_m_times_correlation_cost(
        (inputs, candidate) in (3usize..12).prop_flat_map(|n| {
            (clusterings_strategy(n, 1..5, 4), clustering_strategy(n, 4))
        })
    ) {
        let oracle = DenseOracle::from_clusterings(&inputs);
        let d = total_disagreement(&inputs, &candidate) as f64;
        let m_dc = inputs.len() as f64 * correlation_cost(&oracle, &candidate);
        prop_assert!((d - m_dc).abs() < 1e-6, "D = {}, m·d(C) = {}", d, m_dc);
    }

    #[test]
    fn lower_bound_is_below_the_exact_optimum(
        inputs in (2usize..8).prop_flat_map(|n| clusterings_strategy(n, 1..5, 3))
    ) {
        let oracle = DenseOracle::from_clusterings(&inputs);
        let opt = optimal_clustering(&oracle);
        prop_assert!(lower_bound(&oracle) <= opt.cost + 1e-9);
    }

    #[test]
    fn best_clustering_respects_its_guarantee(
        inputs in (2usize..8).prop_flat_map(|n| clusterings_strategy(n, 2..6, 3))
    ) {
        // D(best input) ≤ 2(1 − 1/m) · D(optimum).
        let m = inputs.len() as f64;
        let best = best_clustering(&inputs);
        let oracle = DenseOracle::from_clusterings(&inputs);
        let opt_cost = optimal_clustering(&oracle).cost * m; // D-scale
        let ratio_bound = 2.0 * (1.0 - 1.0 / m);
        prop_assert!(
            best.cost as f64 <= ratio_bound * opt_cost + 1e-6,
            "best {} vs bound {} (opt {})",
            best.cost,
            ratio_bound * opt_cost,
            opt_cost
        );
    }

    #[test]
    fn algorithms_never_beat_the_exact_optimum(
        inputs in (2usize..8).prop_flat_map(|n| clusterings_strategy(n, 1..5, 3))
    ) {
        let oracle = DenseOracle::from_clusterings(&inputs);
        let opt = optimal_clustering(&oracle);
        let candidates = [
            balls(&oracle, BallsParams::default()),
            agglomerative(&oracle, AgglomerativeParams::default()),
            furthest(&oracle, FurthestParams::default()),
        ];
        for c in &candidates {
            let cost = correlation_cost(&oracle, c);
            prop_assert!(cost >= opt.cost - 1e-9, "cost {} below optimum {}", cost, opt.cost);
        }
    }

    #[test]
    fn local_search_never_increases_cost(
        (inputs, start) in (2usize..10).prop_flat_map(|n| {
            (clusterings_strategy(n, 1..5, 4), clustering_strategy(n, 4))
        })
    ) {
        let oracle = DenseOracle::from_clusterings(&inputs);
        let refined = local_search_from(&oracle, &start, 50, 1e-9);
        prop_assert!(
            correlation_cost(&oracle, &refined) <= correlation_cost(&oracle, &start) + 1e-9
        );
    }

    #[test]
    fn local_search_result_is_a_local_optimum(
        inputs in (2usize..8).prop_flat_map(|n| clusterings_strategy(n, 2..5, 3))
    ) {
        // After convergence, no single-node move can improve the cost.
        let oracle = DenseOracle::from_clusterings(&inputs);
        let start = Clustering::singletons(oracle.len());
        let result = local_search_from(&oracle, &start, 200, 1e-9);
        let base_cost = correlation_cost(&oracle, &result);
        let n = oracle.len();
        let k = result.num_clusters();
        for v in 0..n {
            // Try moving v to every other cluster and to a fresh singleton.
            for target in 0..=k {
                let mut labels = result.labels().to_vec();
                if target == result.label(v) as usize {
                    continue;
                }
                labels[v] = target as u32;
                let moved = Clustering::from_labels(labels);
                prop_assert!(
                    correlation_cost(&oracle, &moved) >= base_cost - 1e-6,
                    "move of {} to {} improves cost", v, target
                );
            }
        }
    }

    #[test]
    fn relabeling_invariance(
        (labels, perm_seed) in (2usize..15).prop_flat_map(|n| {
            (prop::collection::vec(0u32..6, n), any::<u64>())
        })
    ) {
        // Applying any injective relabeling yields an equal Clustering.
        let c1 = Clustering::from_labels(labels.clone());
        let shift = (perm_seed % 100) as u32;
        let relabeled: Vec<u32> = labels.iter().map(|&l| (l * 7 + shift) % 1000 + 1000).collect();
        let c2 = Clustering::from_labels(relabeled);
        prop_assert_eq!(c1, c2);
    }

    #[test]
    fn restrict_preserves_co_membership(
        labels in prop::collection::vec(0u32..4, 4..20)
    ) {
        let c = Clustering::from_labels(labels);
        let n = c.len();
        let subset: Vec<usize> = (0..n).step_by(2).collect();
        let r = c.restrict(&subset);
        for (i, &u) in subset.iter().enumerate() {
            for (j, &v) in subset.iter().enumerate() {
                prop_assert_eq!(r.same_cluster(i, j), c.same_cluster(u, v));
            }
        }
    }

    #[test]
    fn agglomerative_clusters_have_average_distance_at_most_half(
        inputs in (3usize..12).prop_flat_map(|n| clusterings_strategy(n, 2..6, 4))
    ) {
        let oracle = DenseOracle::from_clusterings(&inputs);
        let result = agglomerative(&oracle, AgglomerativeParams::default());
        for members in result.clusters() {
            if members.len() < 2 { continue; }
            let mut total = 0.0;
            let mut pairs = 0;
            for (i, &u) in members.iter().enumerate() {
                for &v in &members[i + 1..] {
                    total += oracle.dist(u, v);
                    pairs += 1;
                }
            }
            prop_assert!(total / pairs as f64 <= 0.5 + 1e-9);
        }
    }

    #[test]
    fn balls_theoretical_alpha_is_within_3x_of_optimum(
        inputs in (2usize..8).prop_flat_map(|n| clusterings_strategy(n, 2..6, 3))
    ) {
        // Theorem 1: cost(BALLS, α=¼) ≤ 3 · OPT. The proof requires the
        // triangle inequality, which instances from clusterings satisfy.
        let oracle = DenseOracle::from_clusterings(&inputs);
        let opt = optimal_clustering(&oracle);
        let result = balls(&oracle, BallsParams::theoretical());
        let cost = correlation_cost(&oracle, &result);
        prop_assert!(
            cost <= 3.0 * opt.cost + 1e-6,
            "BALLS cost {} vs 3·OPT {}",
            cost,
            3.0 * opt.cost
        );
    }
}
