//! Counter-determinism properties of the telemetry layer.
//!
//! Two contracts from the observability design:
//!
//! 1. **Thread invariance** — for the deterministic kernels, every counter
//!    total is bit-identical across `--threads` settings. The parallel
//!    layer partitions work but never changes *what* work is done, so
//!    oracle evaluations, node visits, moves, and merges must all agree
//!    across 1/2/4 threads (and the serially-accumulated improvement sum
//!    must agree to the bit).
//! 2. **Resume invariance** — an interrupt-at-k + resume run performs the
//!    same counted work as the uninterrupted run: resumption is replay
//!    from the snapshot, not repetition, so oracle-evaluation and move
//!    counters match exactly.
//!
//! The metrics registry is process-global, so every test serializes on one
//! mutex and measures with before/after snapshot diffs.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use aggclust_core::algorithms::local_search::LocalSearchInit;
use aggclust_core::algorithms::{
    agglomerative::agglomerative, balls::balls, furthest::furthest, local_search::local_search,
    AgglomerativeParams, Algorithm, BallsParams, FurthestParams, LocalSearchParams,
};
use aggclust_core::clustering::Clustering;
use aggclust_core::instance::DenseOracle;
use aggclust_core::parallel::with_num_threads;
use aggclust_core::snapshot::{load_snapshot, Checkpointer, SnapshotLoad};
use aggclust_core::telemetry::{set_metrics_enabled, MetricsSnapshot};
use aggclust_core::RunBudget;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All counter-measuring tests share the process-global registry; this
/// lock keeps their before/after windows from interleaving.
fn metrics_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Run `f` with metrics enabled and return its counter delta.
fn measured<T>(f: impl FnOnce() -> T) -> (T, MetricsSnapshot) {
    set_metrics_enabled(true);
    let before = MetricsSnapshot::capture();
    let out = f();
    let delta = MetricsSnapshot::capture().diff(&before);
    set_metrics_enabled(false);
    (out, delta)
}

/// Counter deltas with the high-water gauge masked out: `diff` keeps the
/// gauge's absolute value, which legitimately depends on what ran earlier
/// in the process, so equality claims exclude it.
fn masked(mut s: MetricsSnapshot) -> MetricsSnapshot {
    s.mem_high_water_bytes = 0;
    s
}

fn noisy_inputs(n: usize, m: usize, k: u32, noise: f64, seed: u64) -> Vec<Clustering> {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    (0..m)
        .map(|_| {
            Clustering::from_labels(
                truth
                    .iter()
                    .map(|&t| {
                        if rng.gen_bool(noise) {
                            rng.gen_range(0..k)
                        } else {
                            t
                        }
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Every algorithm once, under one thread override; the counter delta is
/// the quantity under test.
fn run_all(oracle: &DenseOracle, threads: usize) -> MetricsSnapshot {
    let (_, delta) = measured(|| {
        with_num_threads(threads, || {
            (
                balls(oracle, BallsParams::practical()),
                agglomerative(oracle, AgglomerativeParams::paper()),
                furthest(oracle, FurthestParams::default()),
                local_search(
                    oracle,
                    LocalSearchParams {
                        init: LocalSearchInit::Random { k: 8, seed: 99 },
                        max_passes: 3,
                        epsilon: 1e-9,
                    },
                ),
            )
        })
    });
    masked(delta)
}

#[test]
fn counters_are_thread_invariant_across_chunking_gates() {
    let _guard = metrics_lock();
    // n = 2200 crosses MIN_CHUNK_PAIRS and the LOCALSEARCH prefetch gate
    // (2048), so the multi-chunk code paths execute with real workers.
    let inputs = noisy_inputs(2200, 4, 10, 0.3, 7);
    let oracle = DenseOracle::from_clusterings(&inputs);
    let t1 = run_all(&oracle, 1);
    let t2 = run_all(&oracle, 2);
    let t4 = run_all(&oracle, 4);
    assert!(t1.oracle_dense_evals > 0, "instrumentation not firing");
    assert!(t1.ls_nodes_visited > 0);
    assert_eq!(t1, t2, "1-thread vs 2-thread counters differ");
    assert_eq!(t1, t4, "1-thread vs 4-thread counters differ");
}

/// Interrupt a LOCALSEARCH run at the iteration cap (checkpointing every
/// node), resume it from the on-disk snapshot, and return the *combined*
/// counter delta of both halves.
fn interrupted_run(
    algorithm: &Algorithm,
    oracle: &DenseOracle,
    cap: u64,
    dir: &std::path::Path,
) -> MetricsSnapshot {
    let path = dir.join("run.ckpt");
    std::fs::remove_file(&path).ok();
    let (_, delta) = measured(|| {
        let mut ckpt = Checkpointer::new(path.clone(), Duration::ZERO);
        let capped = algorithm
            .run_resumable(
                oracle,
                &RunBudget::unlimited().with_max_iters(cap),
                None,
                Some(&mut ckpt),
            )
            .expect("capped run");
        if capped.status.is_converged() {
            return;
        }
        let snapshot = match load_snapshot(&path) {
            SnapshotLoad::Loaded(s) => Some(s),
            SnapshotLoad::Missing => None,
            SnapshotLoad::Corrupt(reason) => panic!("checkpoint corrupt: {reason}"),
        };
        algorithm
            .run_resumable(
                oracle,
                &RunBudget::unlimited(),
                snapshot.as_ref().map(|s| &s.state),
                None,
            )
            .expect("resumed run");
    });
    masked(delta)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Small random instances: the full counter delta (not just labels)
    /// agrees across 1/2/4 threads.
    #[test]
    fn counters_thread_invariant_on_random_instances(
        labels in prop::collection::vec(
            prop::collection::vec(0u32..6, 40), 2..5
        )
    ) {
        let _guard = metrics_lock();
        let inputs: Vec<Clustering> =
            labels.into_iter().map(Clustering::from_labels).collect();
        let oracle = DenseOracle::from_clusterings(&inputs);
        let t1 = run_all(&oracle, 1);
        let t2 = run_all(&oracle, 2);
        let t4 = run_all(&oracle, 4);
        prop_assert_eq!(&t1, &t2);
        prop_assert_eq!(&t1, &t4);
    }

    /// Interrupt-at-k + resume performs exactly the counted work of the
    /// uninterrupted run: identical oracle evaluations, node visits,
    /// passes, and accepted moves. (n stays below the prefetch gate: a
    /// mid-block resume would legitimately re-fill its row block and
    /// re-evaluate those pairs.)
    #[test]
    fn localsearch_counters_survive_interrupt_and_resume(
        labels in prop::collection::vec(
            prop::collection::vec(0u32..4, 24), 2..5
        ),
        cap in 0u64..120,
        seed in 0u64..50,
    ) {
        let _guard = metrics_lock();
        let inputs: Vec<Clustering> =
            labels.into_iter().map(Clustering::from_labels).collect();
        let oracle = DenseOracle::from_clusterings(&inputs);
        let algorithm = Algorithm::LocalSearch(LocalSearchParams {
            init: LocalSearchInit::Random { k: 3, seed },
            ..Default::default()
        });
        let (_, reference) = measured(|| {
            algorithm
                .run_budgeted(&oracle, &RunBudget::unlimited())
                .expect("reference run")
        });
        let reference = masked(reference);
        let dir = std::env::temp_dir().join(format!(
            "aggclust_telemetry_{:?}",
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let combined = interrupted_run(&algorithm, &oracle, cap, &dir);
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(
            combined.oracle_dense_evals, reference.oracle_dense_evals,
            "oracle evaluations differ (cap {})", cap
        );
        prop_assert_eq!(combined.oracle_lazy_evals, reference.oracle_lazy_evals);
        prop_assert_eq!(
            combined.ls_moves, reference.ls_moves,
            "accepted moves differ (cap {})", cap
        );
        prop_assert_eq!(combined.ls_nodes_visited, reference.ls_nodes_visited);
        prop_assert_eq!(combined.ls_passes, reference.ls_passes);
    }
}
