//! Span nesting/timing properties under concurrency with a mock clock.
//!
//! Property (ISSUE 9): for a randomized tree of nested spans executed on
//! 1, 2 and 4 spawned threads sharing one [`Clock::mock`], the collector
//! stream and the timing registry stay mutually consistent:
//!
//! 1. **Per-thread pairing** — within each tid the span records form a
//!    balanced LIFO sequence: every `span_end` matches the most recent
//!    open `span_start` by id *and* name, and nothing stays open.
//! 2. **Id uniqueness** — span ids never repeat across threads.
//! 3. **Interval monotonicity** — each span's elapsed time covers the sum
//!    of its direct children's elapsed times (children nest inside the
//!    parent's interval on one monotone clock), and on a single thread
//!    the elapsed time equals exactly the mock-clock ticks the script
//!    performed inside the span.
//! 4. **Registry agreement** — the [`span_stats`] deltas reproduce the
//!    collector stream: per name, count = number of closes, total_ns =
//!    sum of elapsed, self_ns = sum of (elapsed − same-thread children),
//!    and self ≤ total.
//!
//! The collector, timing clock and registry are process-global, so every
//! case serializes on one mutex (same idiom as telemetry_determinism.rs).

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use aggclust_core::span;
use aggclust_core::telemetry::{
    clear_collector, current_tid, install_collector, set_metrics_enabled, set_timing_clock,
    span_stats, Clock, Collector, Event, Level, SpanData,
};
use proptest::prelude::*;

fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Span names form a small closed set: the registry interns `&'static str`
/// keys, so reusing these across cases keeps it bounded.
const NAMES: [&str; 3] = ["prop_span_a", "prop_span_b", "prop_span_c"];

#[derive(Clone, Debug)]
enum Rec {
    Start {
        tid: u64,
        name: &'static str,
        id: u64,
    },
    End {
        tid: u64,
        name: &'static str,
        id: u64,
        elapsed_ns: u64,
    },
}

/// Test double capturing the full span stream with the emitting thread's
/// tid (collectors run inline on the instrumented thread, so
/// [`current_tid`] here observes the same value a [`JsonlSink`] would
/// stamp on the record).
///
/// [`JsonlSink`]: aggclust_core::telemetry::JsonlSink
#[derive(Default)]
struct RecordingCollector {
    recs: Mutex<Vec<Rec>>,
}

impl Collector for RecordingCollector {
    fn enabled(&self, _level: Level) -> bool {
        true
    }

    fn event(&self, _event: &Event<'_>) {}

    fn span_start(&self, data: &SpanData) {
        self.recs.lock().unwrap().push(Rec::Start {
            tid: current_tid(),
            name: data.name,
            id: data.id,
        });
    }

    fn span_end(&self, data: &SpanData, elapsed: Duration) {
        self.recs.lock().unwrap().push(Rec::End {
            tid: current_tid(),
            name: data.name,
            id: data.id,
            elapsed_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        });
    }
}

/// Run a uniform span tree: at each level open a span, tick the mock
/// clock, recurse into `fanout` children, tick again. Returns the number
/// of `advance` calls made, so the single-thread case can predict every
/// elapsed value exactly.
fn run_tree(clock: &Clock, depth: usize, fanout: usize, tick_ns: u64) -> u64 {
    if depth == 0 {
        return 0;
    }
    let _g = span!(NAMES[depth % NAMES.len()]);
    clock.advance(Duration::from_nanos(tick_ns));
    let mut ticks = 1;
    for _ in 0..fanout {
        ticks += run_tree(clock, depth - 1, fanout, tick_ns);
    }
    clock.advance(Duration::from_nanos(tick_ns));
    ticks + 1
}

/// One closed span reconstructed from the stream.
struct Closed {
    name: &'static str,
    elapsed_ns: u64,
    child_ns: u64,
}

/// Replay one thread's records through a LIFO stack, asserting pairing,
/// and return the closed spans with their direct-child elapsed sums.
fn replay_thread(tid: u64, recs: &[Rec]) -> Vec<Closed> {
    let mut stack: Vec<(u64, &'static str, u64)> = Vec::new(); // (id, name, child_ns)
    let mut closed = Vec::new();
    for rec in recs {
        match *rec {
            Rec::Start { name, id, .. } => stack.push((id, name, 0)),
            Rec::End {
                name,
                id,
                elapsed_ns,
                ..
            } => {
                let (top_id, top_name, child_ns) = stack
                    .pop()
                    .unwrap_or_else(|| panic!("tid {tid}: span_end {name} with empty stack"));
                assert_eq!(
                    (top_id, top_name),
                    (id, name),
                    "tid {tid}: non-LIFO span end"
                );
                assert!(
                    elapsed_ns >= child_ns,
                    "tid {tid}: span {name} elapsed {elapsed_ns} ns < children {child_ns} ns"
                );
                if let Some(parent) = stack.last_mut() {
                    parent.2 += elapsed_ns;
                }
                closed.push(Closed {
                    name,
                    elapsed_ns,
                    child_ns,
                });
            }
        }
    }
    assert!(
        stack.is_empty(),
        "tid {tid}: {} spans never closed",
        stack.len()
    );
    closed
}

fn check_span_tree(threads: usize, depth: usize, fanout: usize, tick_ns: u64) {
    let _guard = telemetry_lock();
    let clock = Clock::mock();
    set_timing_clock(clock.clone());
    set_metrics_enabled(true);
    let collector = Arc::new(RecordingCollector::default());
    install_collector(collector.clone());
    let before: Vec<(u64, u64, u64)> = NAMES
        .iter()
        .map(|name| {
            let s = span_stats(name);
            (s.count.get(), s.total_ns.get(), s.self_ns.get())
        })
        .collect();

    std::thread::scope(|scope| {
        for t in 0..threads {
            let clock = clock.clone();
            // Stagger tick sizes so concurrent threads cannot mask each
            // other's arithmetic by symmetry.
            scope.spawn(move || run_tree(&clock, depth, fanout, tick_ns + t as u64));
        }
    });

    clear_collector();
    set_metrics_enabled(false);
    set_timing_clock(Clock::system());
    let recs = collector.recs.lock().unwrap().clone();

    // Ids are process-unique, not just thread-unique.
    let mut ids: Vec<u64> = recs
        .iter()
        .filter_map(|r| match r {
            Rec::Start { id, .. } => Some(*id),
            Rec::End { .. } => None,
        })
        .collect();
    let spans_per_thread: usize = (1..=depth).map(|d| fanout.pow((depth - d) as u32)).sum();
    assert_eq!(ids.len(), threads * spans_per_thread, "wrong span count");
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), threads * spans_per_thread, "span ids reused");

    let mut tids: Vec<u64> = recs
        .iter()
        .map(|r| match r {
            Rec::Start { tid, .. } | Rec::End { tid, .. } => *tid,
        })
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), threads, "expected one tid per spawned thread");

    let mut closed = Vec::new();
    for &tid in &tids {
        let thread_recs: Vec<Rec> = recs
            .iter()
            .filter(|r| match r {
                Rec::Start { tid: t, .. } | Rec::End { tid: t, .. } => *t == tid,
            })
            .cloned()
            .collect();
        let thread_closed = replay_thread(tid, &thread_recs);
        if threads == 1 {
            // Alone on the mock clock, every elapsed value is exact. A
            // span entered at level L covers T(L) ticks where
            // T(L) = 2 + fanout·T(L-1), and fanout^(depth-L) such spans
            // exist, all named NAMES[L % 3] — compare as a multiset.
            let mut expected: Vec<(&str, u64)> = Vec::new();
            let mut ticks_at_level = 0u64;
            for level in 1..=depth {
                ticks_at_level = 2 + fanout as u64 * ticks_at_level;
                let copies = (fanout as u64).pow((depth - level) as u32);
                for _ in 0..copies {
                    expected.push((NAMES[level % NAMES.len()], ticks_at_level * tick_ns));
                }
            }
            let mut actual: Vec<(&str, u64)> = thread_closed
                .iter()
                .map(|c| (c.name, c.elapsed_ns))
                .collect();
            expected.sort_unstable();
            actual.sort_unstable();
            assert_eq!(actual, expected, "single-thread elapsed values inexact");
        }
        closed.extend(thread_closed);
    }

    // The timing registry must agree with the collector stream.
    for (i, name) in NAMES.iter().enumerate() {
        let s = span_stats(name);
        let (count, total, self_ns) = (
            s.count.get() - before[i].0,
            s.total_ns.get() - before[i].1,
            s.self_ns.get() - before[i].2,
        );
        let mine: Vec<&Closed> = closed.iter().filter(|c| c.name == *name).collect();
        assert_eq!(count, mine.len() as u64, "span {name}: count mismatch");
        let sum_elapsed: u64 = mine.iter().map(|c| c.elapsed_ns).sum();
        let sum_self: u64 = mine.iter().map(|c| c.elapsed_ns - c.child_ns).sum();
        assert_eq!(total, sum_elapsed, "span {name}: total_ns mismatch");
        assert_eq!(self_ns, sum_self, "span {name}: self_ns mismatch");
        assert!(self_ns <= total, "span {name}: self_ns exceeds total_ns");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The four span-stream invariants hold for random tree shapes on
    /// 1, 2 and 4 threads sharing one mock clock.
    #[test]
    fn span_streams_pair_and_time_consistently(
        depth in 1usize..5,
        fanout in 1usize..4,
        tick_ns in 1u64..1_000,
    ) {
        for threads in [1usize, 2, 4] {
            check_span_tree(threads, depth, fanout, tick_ns);
        }
    }
}

/// Pin the exact single-thread attribution on one hand-checked shape:
/// depth 2, fanout 2, 10 ns ticks. The root (level 2 → "prop_span_c")
/// runs 2 own ticks plus two children; each child ("prop_span_b") runs 2
/// ticks. So root elapsed = 60 ns with self = 20 ns, children 20 ns each.
#[test]
fn hand_checked_attribution_depth2() {
    let _guard = telemetry_lock();
    let clock = Clock::mock();
    set_timing_clock(clock.clone());
    set_metrics_enabled(true);
    let collector = Arc::new(RecordingCollector::default());
    install_collector(collector.clone());
    let root = span_stats("prop_span_c");
    let child = span_stats("prop_span_b");
    let before = (
        root.total_ns.get(),
        root.self_ns.get(),
        child.total_ns.get(),
        root.max_ns.get(),
    );

    run_tree(&clock, 2, 2, 10);

    clear_collector();
    set_metrics_enabled(false);
    set_timing_clock(Clock::system());
    assert_eq!(root.total_ns.get() - before.0, 60, "root total");
    assert_eq!(root.self_ns.get() - before.1, 20, "root self");
    assert_eq!(child.total_ns.get() - before.2, 40, "children total");
    assert!(root.max_ns.get() >= 60, "root max gauge");
    assert!(before.3 <= root.max_ns.get(), "max gauge is monotone");
}
