//! Categorical datasets with class labels, missing values, and optional
//! numeric side columns, plus a seeded latent-class generator.
//!
//! The paper's categorical-clustering application (§2) views each attribute
//! as a clustering of the rows; [`CategoricalDataset`] is the container that
//! conversion starts from ([`crate::to_clusterings`]).

use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::{Rng, SeedableRng};

/// A categorical attribute: a name and the number of distinct values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// Human-readable attribute name.
    pub name: String,
    /// Number of distinct values (`0..arity`).
    pub arity: u16,
}

/// A numeric side column (used by the Census dataset, whose 6 numeric
/// attributes are quantile-binned before aggregation).
#[derive(Clone, Debug, PartialEq)]
pub struct NumericColumn {
    /// Column name.
    pub name: String,
    /// One value per row; `None` = missing.
    pub values: Vec<Option<f64>>,
}

/// A table of `n` rows over categorical attributes, with per-row class
/// labels (used only for evaluation, never by the algorithms) and optional
/// numeric side columns.
#[derive(Clone, Debug)]
pub struct CategoricalDataset {
    /// Dataset name (for reports).
    pub name: String,
    attrs: Vec<Attribute>,
    /// Row-major `n × attrs.len()`; `None` = missing value.
    values: Vec<Option<u16>>,
    n: usize,
    class_labels: Vec<u32>,
    class_names: Vec<String>,
    numeric: Vec<NumericColumn>,
}

impl CategoricalDataset {
    /// Assemble a dataset from parts.
    ///
    /// # Panics
    /// Panics on shape mismatches or out-of-range values.
    pub fn new(
        name: impl Into<String>,
        attrs: Vec<Attribute>,
        values: Vec<Option<u16>>,
        class_labels: Vec<u32>,
        class_names: Vec<String>,
    ) -> Self {
        let a = attrs.len();
        assert!(a > 0, "need at least one attribute");
        assert_eq!(values.len() % a, 0, "values length not a multiple of attrs");
        let n = values.len() / a;
        assert_eq!(class_labels.len(), n, "one class label per row required");
        let num_classes = class_names.len() as u32;
        assert!(
            class_labels.iter().all(|&c| c < num_classes),
            "class label out of range"
        );
        for (i, v) in values.iter().enumerate() {
            if let Some(v) = v {
                assert!(
                    *v < attrs[i % a].arity,
                    "value {v} out of range for attribute {}",
                    attrs[i % a].name
                );
            }
        }
        CategoricalDataset {
            name: name.into(),
            attrs,
            values,
            n,
            class_labels,
            class_names,
            numeric: Vec::new(),
        }
    }

    /// Replace the class labels (e.g. to model class noise on top of the
    /// latent structure, as the Census preset does for income).
    ///
    /// # Panics
    /// Panics on length mismatch or out-of-range labels.
    pub fn with_class_labels(mut self, labels: Vec<u32>, names: Vec<String>) -> Self {
        assert_eq!(labels.len(), self.n, "one class label per row required");
        let num = names.len() as u32;
        assert!(labels.iter().all(|&c| c < num), "class label out of range");
        self.class_labels = labels;
        self.class_names = names;
        self
    }

    /// Attach numeric side columns.
    pub fn with_numeric(mut self, numeric: Vec<NumericColumn>) -> Self {
        for col in &numeric {
            assert_eq!(col.values.len(), self.n, "numeric column length mismatch");
        }
        self.numeric = numeric;
        self
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The categorical attributes.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The numeric side columns.
    pub fn numeric_columns(&self) -> &[NumericColumn] {
        &self.numeric
    }

    /// Value of attribute `attr` on `row` (`None` = missing).
    #[inline]
    pub fn value(&self, row: usize, attr: usize) -> Option<u16> {
        self.values[row * self.attrs.len() + attr]
    }

    /// All categorical values of one row.
    pub fn row(&self, row: usize) -> &[Option<u16>] {
        let a = self.attrs.len();
        &self.values[row * a..(row + 1) * a]
    }

    /// Ground-truth class label of each row.
    pub fn class_labels(&self) -> &[u32] {
        &self.class_labels
    }

    /// Names of the classes.
    pub fn class_names(&self) -> Vec<&str> {
        self.class_names.iter().map(|s| s.as_str()).collect()
    }

    /// Total number of missing categorical entries.
    pub fn num_missing(&self) -> usize {
        self.values.iter().filter(|v| v.is_none()).count()
    }

    /// Restrict to a subset of rows (for subsampled experiment runs).
    pub fn subsample(&self, rows: &[usize]) -> CategoricalDataset {
        let a = self.attrs.len();
        let mut values = Vec::with_capacity(rows.len() * a);
        for &r in rows {
            values.extend_from_slice(self.row(r));
        }
        let numeric = self
            .numeric
            .iter()
            .map(|col| NumericColumn {
                name: col.name.clone(),
                values: rows.iter().map(|&r| col.values[r]).collect(),
            })
            .collect();
        CategoricalDataset {
            name: format!("{} (n={})", self.name, rows.len()),
            attrs: self.attrs.clone(),
            values,
            n: rows.len(),
            class_labels: rows.iter().map(|&r| self.class_labels[r]).collect(),
            class_names: self.class_names.clone(),
            numeric,
        }
    }

    /// Uniformly subsample `k` rows with a seeded RNG.
    pub fn subsample_random(&self, k: usize, seed: u64) -> CategoricalDataset {
        let k = k.min(self.n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = index_sample(&mut rng, self.n, k).into_vec();
        rows.sort_unstable();
        self.subsample(&rows)
    }
}

/// Specification of one generated attribute.
#[derive(Clone, Debug)]
pub struct AttrSpec {
    /// Attribute name.
    pub name: String,
    /// Number of distinct values.
    pub arity: u16,
    /// Probability that a cell ignores its latent cluster's preferred value
    /// and draws uniformly instead.
    pub noise: f64,
}

impl AttrSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, arity: u16, noise: f64) -> Self {
        assert!(arity >= 1, "arity must be positive");
        assert!((0.0..=1.0).contains(&noise), "noise out of [0,1]");
        AttrSpec {
            name: name.into(),
            arity,
            noise,
        }
    }
}

/// Configuration of the latent-class generator.
///
/// Rows are drawn from `latent_clusters` hidden clusters; each cluster has a
/// preferred value for every attribute (sampled once from the attribute's
/// domain), and each cell either copies the preferred value or is uniform
/// noise. The hidden cluster determines the visible class label through
/// `cluster_to_class`, so class structure is recoverable from the attributes
/// but — like the real UCI data — imperfectly.
#[derive(Clone, Debug)]
pub struct LatentClassConfig {
    /// Dataset name.
    pub name: String,
    /// Number of rows.
    pub n: usize,
    /// Relative sizes of the latent clusters (normalized internally).
    pub cluster_weights: Vec<f64>,
    /// Class label of each latent cluster.
    pub cluster_to_class: Vec<u32>,
    /// Names of the classes.
    pub class_names: Vec<String>,
    /// The attributes to generate.
    pub attrs: Vec<AttrSpec>,
    /// Exact number of cells to blank out as missing values.
    pub missing_count: usize,
    /// Per-row noise multiplier mixture `(probability, multiplier)`:
    /// each row draws a multiplier applied to every attribute's noise
    /// (capped at 1). This models "maverick" rows whose behavior is only
    /// weakly tied to their latent cluster — real categorical data has
    /// correlated, per-entity deviation, not i.i.d. cell noise.
    /// An empty vector means multiplier 1 for all rows; probabilities are
    /// normalized internally.
    pub row_noise_levels: Vec<(f64, f64)>,
    /// Overlapping cluster profiles `(cluster, base, differ_attrs)`: the
    /// cluster copies `base`'s preferred values, then re-rolls
    /// `differ_attrs` randomly chosen attributes. This creates clusters
    /// that agree on most attributes — the mechanism behind impure merged
    /// clusters like `c1` of the paper's Table 1 (808 poisonous + 2864
    /// edible mushrooms sharing most physical characteristics).
    pub profile_overlaps: Vec<(usize, usize, usize)>,
    /// RNG seed.
    pub seed: u64,
}

impl LatentClassConfig {
    /// Generate the dataset (deterministic given the seed). Also returns
    /// the latent cluster of every row — the generative ground truth, which
    /// is finer than the class labels.
    pub fn generate(&self) -> (CategoricalDataset, Vec<u32>) {
        let k = self.cluster_weights.len();
        assert!(k >= 1, "need at least one latent cluster");
        assert_eq!(self.cluster_to_class.len(), k, "cluster_to_class length");
        let num_classes = self.class_names.len() as u32;
        assert!(
            self.cluster_to_class.iter().all(|&c| c < num_classes),
            "cluster_to_class out of range"
        );
        let a = self.attrs.len();
        assert!(a >= 1, "need at least one attribute");
        assert!(
            self.missing_count <= self.n * a,
            "missing_count exceeds cell count"
        );

        let mut rng = StdRng::seed_from_u64(self.seed);

        // Preferred value of each (cluster, attribute).
        let mut prefs: Vec<Vec<u16>> = (0..k)
            .map(|_| {
                self.attrs
                    .iter()
                    .map(|spec| rng.gen_range(0..spec.arity))
                    .collect()
            })
            .collect();
        // Calibrate the independently drawn profiles so the latent classes
        // are actually recoverable: two uniform draws agree on each attribute
        // with probability 1/arity, so for low-arity (especially binary)
        // attributes a pair of "distinct" clusters can coincide on most of
        // the schema by chance. When that happens the aggregate instance
        // degenerates — merging the colliding clusters becomes optimal — and
        // the dataset no longer exhibits the cluster structure it advertises.
        // Enforce that every pair of independently drawn profiles disagrees
        // on at least two thirds of the multi-valued attributes — enough
        // margin that per-attribute noise (amplified by the row-noise
        // mixture) cannot push a cross-cluster pair below the 1/2 agreement
        // threshold that makes merging profitable. Clusters listed in
        // `profile_overlaps` are excluded: their similarity to the base is
        // calibrated explicitly below.
        let mut overlaps_base: Vec<bool> = vec![false; k];
        for &(cluster, _, _) in &self.profile_overlaps {
            overlaps_base[cluster] = true;
        }
        let eligible: Vec<usize> = (0..a).filter(|&t| self.attrs[t].arity > 1).collect();
        let min_sep = (eligible.len() * 2).div_ceil(3);
        for j in 1..k {
            if overlaps_base[j] {
                continue;
            }
            // Re-rolling an attribute to separate (i, j) can re-collide j
            // with an earlier i', so sweep until a full pass finds every
            // pair separated (bounded — collisions are rare after a fix).
            'passes: for _ in 0..64 {
                let mut all_separated = true;
                for i in 0..j {
                    if overlaps_base[i] {
                        continue;
                    }
                    loop {
                        let agree: Vec<usize> = eligible
                            .iter()
                            .copied()
                            .filter(|&t| prefs[i][t] == prefs[j][t])
                            .collect();
                        if eligible.len() - agree.len() >= min_sep {
                            break;
                        }
                        all_separated = false;
                        let t = agree[rng.gen_range(0..agree.len())];
                        let arity = self.attrs[t].arity;
                        let mut v = rng.gen_range(0..arity);
                        while v == prefs[i][t] {
                            v = rng.gen_range(0..arity);
                        }
                        prefs[j][t] = v;
                    }
                }
                if all_separated {
                    break 'passes;
                }
            }
        }
        // Apply profile overlaps: the cluster copies its base's preferences
        // and then differs on a fixed number of randomly chosen attributes.
        for &(cluster, base, differ) in &self.profile_overlaps {
            assert!(
                cluster < k && base < k,
                "profile_overlaps index out of range"
            );
            assert!(cluster != base, "a cluster cannot overlap itself");
            prefs[cluster] = prefs[base].clone();
            let differ = differ.min(a);
            for attr in index_sample(&mut rng, a, differ) {
                let arity = self.attrs[attr].arity;
                if arity > 1 {
                    // Re-roll to a value different from the base's.
                    let mut v = rng.gen_range(0..arity);
                    while v == prefs[base][attr] {
                        v = rng.gen_range(0..arity);
                    }
                    prefs[cluster][attr] = v;
                }
            }
        }

        // Per-row noise multiplier mixture.
        let noise_levels: Vec<(f64, f64)> = if self.row_noise_levels.is_empty() {
            vec![(1.0, 1.0)]
        } else {
            self.row_noise_levels.clone()
        };
        let level_total: f64 = noise_levels.iter().map(|(p, _)| p).sum();
        assert!(level_total > 0.0, "row noise probabilities must sum > 0");

        // Cumulative cluster weights for sampling.
        let total_w: f64 = self.cluster_weights.iter().sum();
        assert!(
            total_w > 0.0,
            "cluster weights must sum to a positive value"
        );
        let mut cum = Vec::with_capacity(k);
        let mut acc = 0.0;
        for w in &self.cluster_weights {
            assert!(*w >= 0.0, "negative cluster weight");
            acc += w / total_w;
            cum.push(acc);
        }

        let mut values: Vec<Option<u16>> = Vec::with_capacity(self.n * a);
        let mut class_labels = Vec::with_capacity(self.n);
        let mut latent = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let r: f64 = rng.gen();
            let z = cum.iter().position(|&c| r <= c).unwrap_or(k - 1);
            latent.push(z as u32);
            class_labels.push(self.cluster_to_class[z]);
            // Draw this row's noise multiplier.
            let mut draw = rng.gen::<f64>() * level_total;
            let mut multiplier = noise_levels.last().map_or(1.0, |level| level.1);
            for &(p, m) in &noise_levels {
                draw -= p;
                if draw <= 0.0 {
                    multiplier = m;
                    break;
                }
            }
            for (j, spec) in self.attrs.iter().enumerate() {
                let noise = (spec.noise * multiplier).min(1.0);
                let v = if rng.gen::<f64>() < noise {
                    rng.gen_range(0..spec.arity)
                } else {
                    prefs[z][j]
                };
                values.push(Some(v));
            }
        }

        // Blank out exactly `missing_count` distinct cells.
        let cells = index_sample(&mut rng, self.n * a, self.missing_count);
        for cell in cells {
            values[cell] = None;
        }

        let attrs = self
            .attrs
            .iter()
            .map(|s| Attribute {
                name: s.name.clone(),
                arity: s.arity,
            })
            .collect();
        let ds = CategoricalDataset::new(
            self.name.clone(),
            attrs,
            values,
            class_labels,
            self.class_names.clone(),
        );
        (ds, latent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> LatentClassConfig {
        LatentClassConfig {
            name: "tiny".into(),
            n: 200,
            cluster_weights: vec![1.0, 1.0, 2.0],
            cluster_to_class: vec![0, 1, 1],
            class_names: vec!["a".into(), "b".into()],
            attrs: vec![
                AttrSpec::new("x", 4, 0.1),
                AttrSpec::new("y", 3, 0.1),
                AttrSpec::new("z", 5, 0.2),
            ],
            missing_count: 30,
            row_noise_levels: vec![],
            profile_overlaps: vec![],
            seed: 11,
        }
    }

    #[test]
    fn generator_respects_shape() {
        let (ds, latent) = tiny_config().generate();
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.attributes().len(), 3);
        assert_eq!(ds.num_missing(), 30);
        assert_eq!(latent.len(), 200);
        assert!(latent.iter().all(|&z| z < 3));
        assert!(ds.class_labels().iter().all(|&c| c < 2));
    }

    #[test]
    fn generator_is_deterministic() {
        let (a, la) = tiny_config().generate();
        let (b, lb) = tiny_config().generate();
        assert_eq!(la, lb);
        for r in 0..a.len() {
            assert_eq!(a.row(r), b.row(r));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = tiny_config().generate();
        let mut cfg = tiny_config();
        cfg.seed = 99;
        let (b, _) = cfg.generate();
        let same = (0..a.len()).all(|r| a.row(r) == b.row(r));
        assert!(!same);
    }

    #[test]
    fn latent_determines_class() {
        let cfg = tiny_config();
        let (ds, latent) = cfg.generate();
        for (r, &z) in latent.iter().enumerate() {
            assert_eq!(ds.class_labels()[r], cfg.cluster_to_class[z as usize]);
        }
    }

    #[test]
    fn cluster_weights_are_roughly_respected() {
        let (_, latent) = tiny_config().generate();
        let count2 = latent.iter().filter(|&&z| z == 2).count();
        // Cluster 2 has half the total weight of 200 rows → ≈ 100.
        assert!((70..=130).contains(&count2), "count2 = {count2}");
    }

    #[test]
    fn values_in_range() {
        let (ds, _) = tiny_config().generate();
        for r in 0..ds.len() {
            for (j, attr) in ds.attributes().iter().enumerate() {
                if let Some(v) = ds.value(r, j) {
                    assert!(v < attr.arity);
                }
            }
        }
    }

    #[test]
    fn subsample_preserves_rows() {
        let (ds, _) = tiny_config().generate();
        let sub = ds.subsample(&[3, 10, 42]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.row(0), ds.row(3));
        assert_eq!(sub.row(2), ds.row(42));
        assert_eq!(sub.class_labels()[1], ds.class_labels()[10]);
    }

    #[test]
    fn subsample_random_is_deterministic() {
        let (ds, _) = tiny_config().generate();
        let a = ds.subsample_random(50, 7);
        let b = ds.subsample_random(50, 7);
        assert_eq!(a.len(), 50);
        for r in 0..50 {
            assert_eq!(a.row(r), b.row(r));
        }
    }

    #[test]
    fn dataset_with_numeric_columns() {
        let (ds, _) = tiny_config().generate();
        let n = ds.len();
        let ds = ds.with_numeric(vec![NumericColumn {
            name: "age".into(),
            values: (0..n).map(|i| Some(i as f64)).collect(),
        }]);
        assert_eq!(ds.numeric_columns().len(), 1);
        assert_eq!(ds.numeric_columns()[0].values[5], Some(5.0));
    }

    #[test]
    #[should_panic(expected = "out of range for attribute")]
    fn out_of_range_value_rejected() {
        let _ = CategoricalDataset::new(
            "bad",
            vec![Attribute {
                name: "x".into(),
                arity: 2,
            }],
            vec![Some(5)],
            vec![0],
            vec!["c".into()],
        );
    }
}
