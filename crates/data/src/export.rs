//! Writers that serialize a [`CategoricalDataset`] back into the UCI file
//! formats the loaders in [`crate::uci`] read — so synthetic presets can be
//! handed to external tools, and so loader/writer pairs can be
//! round-trip-tested against each other.
//!
//! Values are rendered as `v<code>` tokens (the loaders intern arbitrary
//! strings, so codes survive a round trip; only the *partition* structure
//! matters to every consumer in this repository).

use crate::categorical::CategoricalDataset;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Render in `house-votes-84.data` layout: `class,f1,...,f16` per row,
/// missing as `?`.
///
/// # Panics
/// Panics if the dataset does not have exactly 16 attributes.
pub fn votes_format(ds: &CategoricalDataset) -> String {
    assert_eq!(
        ds.attributes().len(),
        16,
        "votes format requires 16 attributes"
    );
    generic_class_first(ds)
}

/// Render in `agaricus-lepiota.data` layout: `class,f1,...,f22` per row.
///
/// # Panics
/// Panics if the dataset does not have exactly 22 attributes.
pub fn mushrooms_format(ds: &CategoricalDataset) -> String {
    assert_eq!(
        ds.attributes().len(),
        22,
        "mushrooms format requires 22 attributes"
    );
    generic_class_first(ds)
}

/// Render in `adult.data` layout: the 6 numeric columns and 8 categorical
/// attributes interleaved at their canonical positions, class last.
///
/// # Panics
/// Panics unless the dataset has exactly 8 categorical attributes and 6
/// numeric columns.
pub fn census_format(ds: &CategoricalDataset) -> String {
    assert_eq!(ds.attributes().len(), 8, "census format needs 8 attributes");
    assert_eq!(
        ds.numeric_columns().len(),
        6,
        "census format needs 6 numeric columns"
    );
    // adult.data field order: age, workclass, fnlwgt, education,
    // education-num, marital, occupation, relationship, race, sex,
    // capital-gain, capital-loss, hours-per-week, native-country, class.
    // Numeric indices into numeric_columns: 0,1,2,3,4,5 as produced by the
    // preset/loader (age, fnlwgt, education-num, gain, loss, hours).
    let mut out = String::new();
    let classes = ds.class_names();
    for row in 0..ds.len() {
        let num = |j: usize| match ds.numeric_columns()[j].values[row] {
            Some(v) => format!("{v}"),
            None => "?".to_string(),
        };
        let cat = |j: usize| match ds.value(row, j) {
            Some(v) => format!("v{v}"),
            None => "?".to_string(),
        };
        let fields = [
            num(0),
            cat(0),
            num(1),
            cat(1),
            num(2),
            cat(2),
            cat(3),
            cat(4),
            cat(5),
            cat(6),
            num(3),
            num(4),
            num(5),
            cat(7),
            classes[ds.class_labels()[row] as usize].to_string(),
        ];
        let _ = writeln!(out, "{}", fields.join(", "));
    }
    out
}

fn generic_class_first(ds: &CategoricalDataset) -> String {
    let mut out = String::new();
    let classes = ds.class_names();
    for row in 0..ds.len() {
        let mut fields = Vec::with_capacity(ds.attributes().len() + 1);
        fields.push(classes[ds.class_labels()[row] as usize].to_string());
        for j in 0..ds.attributes().len() {
            fields.push(match ds.value(row, j) {
                Some(v) => format!("v{v}"),
                None => "?".to_string(),
            });
        }
        let _ = writeln!(out, "{}", fields.join(","));
    }
    out
}

/// Write any of the formats to a file.
pub fn write_file(path: impl AsRef<Path>, content: &str) -> io::Result<()> {
    fs::write(path, content)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{census_like_scaled, mushrooms_like, votes_like};
    use crate::uci::{load_census, load_mushrooms, load_votes};
    use aggclust_core::clustering::PartialClustering;

    fn tmp(name: &str, content: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("aggclust-export-{name}"));
        fs::write(&path, content).unwrap();
        path
    }

    /// The partitions induced by every attribute must survive the round
    /// trip (value codes may be renumbered; partitions may not change).
    fn assert_same_partitions(a: &CategoricalDataset, b: &CategoricalDataset) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.attributes().len(), b.attributes().len());
        for j in 0..a.attributes().len() {
            let pa = PartialClustering::from_labels(
                (0..a.len()).map(|r| a.value(r, j).map(u32::from)).collect(),
            );
            let pb = PartialClustering::from_labels(
                (0..b.len()).map(|r| b.value(r, j).map(u32::from)).collect(),
            );
            assert_eq!(pa, pb, "attribute {j} changed across round trip");
        }
        assert_eq!(a.num_missing(), b.num_missing());
    }

    #[test]
    fn votes_round_trip() {
        let (ds, _) = votes_like(5);
        let path = tmp("votes.data", &votes_format(&ds));
        let loaded = load_votes(&path).unwrap();
        assert_same_partitions(&ds, &loaded);
        // Class partition preserved too (names map 1:1).
        for r in 0..ds.len() {
            let same = ds.class_labels()[r] == ds.class_labels()[0];
            let same_loaded = loaded.class_labels()[r] == loaded.class_labels()[0];
            assert_eq!(same, same_loaded);
        }
        fs::remove_file(path).ok();
    }

    #[test]
    fn mushrooms_round_trip() {
        let (ds, _) = mushrooms_like(5);
        let ds = ds.subsample_random(300, 1);
        let path = tmp("mush.data", &mushrooms_format(&ds));
        let loaded = load_mushrooms(&path).unwrap();
        assert_same_partitions(&ds, &loaded);
        fs::remove_file(path).ok();
    }

    #[test]
    fn census_round_trip() {
        let (ds, _) = census_like_scaled(120, 5);
        let path = tmp("adult.data", &census_format(&ds));
        let loaded = load_census(&path).unwrap();
        assert_same_partitions(&ds, &loaded);
        // Numeric columns preserved exactly.
        for (ca, cb) in ds.numeric_columns().iter().zip(loaded.numeric_columns()) {
            for (va, vb) in ca.values.iter().zip(&cb.values) {
                match (va, vb) {
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
                    (None, None) => {}
                    other => panic!("numeric mismatch: {other:?}"),
                }
            }
        }
        fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "requires 16 attributes")]
    fn votes_format_checks_shape() {
        let (ds, _) = census_like_scaled(10, 1);
        let _ = votes_format(&ds);
    }
}
