//! # aggclust-data
//!
//! Datasets and generators for the paper's experiments:
//!
//! * [`categorical`] — categorical datasets with class labels and missing
//!   values, plus a seeded latent-class generator,
//! * [`presets`] — UCI-shaped synthetic stand-ins for **Votes**,
//!   **Mushrooms** and **Census** with the exact dimensions and
//!   missing-value counts reported in the paper,
//! * [`synth2d`] — the 2-D point sets of Figures 3–5 (seven perceptual
//!   groups; Gaussian mixtures with uniform background noise),
//! * [`to_clusterings`] — the categorical-data application of §2: one
//!   clustering per attribute (plus quantile binning for numeric columns),
//! * [`uci`] — parsers for the real UCI files (`house-votes-84.data`,
//!   `agaricus-lepiota.data`, `adult.data`); the presets are used when the
//!   files are absent.
//!
//! Everything randomized takes an explicit `u64` seed and is reproducible
//! bit-for-bit.
//!
//! ```
//! use aggclust_data::presets::votes_like;
//! use aggclust_data::to_clusterings::attribute_clusterings;
//!
//! let (dataset, _latent) = votes_like(1);
//! assert_eq!(dataset.len(), 435);          // paper's row count
//! assert_eq!(dataset.num_missing(), 288);  // paper's missing-value count
//! let clusterings = attribute_clusterings(&dataset);
//! assert_eq!(clusterings.len(), 16);       // one clustering per issue
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod categorical;
pub mod export;
pub mod presets;
pub mod synth2d;
pub mod to_clusterings;
pub mod uci;

pub use categorical::{AttrSpec, Attribute, CategoricalDataset, LatentClassConfig};
pub use to_clusterings::attribute_clusterings;
