//! UCI-shaped synthetic stand-ins for the paper's three categorical
//! datasets.
//!
//! The real UCI files are not redistributable inside this repository, so
//! each preset generates a latent-class dataset with the **exact shape**
//! reported in the paper — row count, attribute count and arities, number
//! of missing values, and class balance — and cluster structure calibrated
//! so the classes are recoverable from the attributes, but imperfectly (as
//! in the real data). When the real files are present under `data/`, the
//! loaders in [`crate::uci`] take precedence in the experiment harness.
//!
//! | Preset | Rows | Attributes | Missing | Classes |
//! |---|---|---|---|---|
//! | [`votes_like`] | 435 | 16 binary | 288 | democrat 267 / republican 168 |
//! | [`mushrooms_like`] | 8124 | 22 (arities 1–12) | 2480 | edible 4208 / poisonous 3916 |
//! | [`census_like`] | 32561 | 8 categorical + 6 numeric | 0 cat. | ≤50K ~76% / >50K ~24% |
//!
//! The Mushrooms latent clusters follow the sizes of the paper's Table 1
//! confusion matrix, so the "natural" number of clusters (7–9) matches what
//! the aggregation algorithms discovered there.

use crate::categorical::{AttrSpec, CategoricalDataset, LatentClassConfig, NumericColumn};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Congressional-votes-shaped dataset: 435 rows, 16 yes/no issues,
/// 288 missing values, two parties.
///
/// Issue noise levels alternate between strongly partisan (0.08) and weakly
/// partisan (0.25) to mimic the mix of party-line and bipartisan votes; two
/// latent clusters, one per party (267 democrats, 168 republicans).
pub fn votes_like(seed: u64) -> (CategoricalDataset, Vec<u32>) {
    let issue_noise = [0.04, 0.07, 0.13, 0.08];
    let attrs = (0..16)
        .map(|i| {
            AttrSpec::new(
                format!("issue-{:02}", i + 1),
                2,
                issue_noise[i % issue_noise.len()],
            )
        })
        .collect();
    LatentClassConfig {
        name: "votes-like".into(),
        n: 435,
        // Four latent voting blocs: loyal democrats, loyal republicans,
        // and two *crossover* blocs (conservative democrats voting the
        // republican line on most issues, and vice versa). The crossover
        // blocs are what give the real dataset its ~11–15% classification
        // error at k = 2 — no attribute-based clustering can put them with
        // their own party.
        cluster_weights: vec![237.0, 146.0, 30.0, 22.0],
        cluster_to_class: vec![0, 1, 0, 1],
        class_names: vec!["democrat".into(), "republican".into()],
        attrs,
        missing_count: 288,
        row_noise_levels: vec![(0.80, 1.0), (0.20, 2.2)],
        // Crossover blocs shadow the opposite party's profile, differing on
        // only two issues.
        profile_overlaps: vec![(2, 1, 2), (3, 0, 2)],
        seed,
    }
    .generate()
}

/// Mushroom-shaped dataset: 8124 rows, the 22 attributes of
/// agaricus-lepiota with their real arities (including the constant
/// `veil-type`), 2480 missing values.
///
/// Nine latent clusters sized after the paper's Table 1 confusion matrix
/// (3672 = 2864 e + 808 p is modeled as two latent clusters sharing cluster
/// structure loosely), mapped onto poisonous/edible with the real 3916/4208
/// class balance.
pub fn mushrooms_like(seed: u64) -> (CategoricalDataset, Vec<u32>) {
    let specs: [(&str, u16); 22] = [
        ("cap-shape", 6),
        ("cap-surface", 4),
        ("cap-color", 10),
        ("bruises", 2),
        ("odor", 9),
        ("gill-attachment", 2),
        ("gill-spacing", 2),
        ("gill-size", 2),
        ("gill-color", 12),
        ("stalk-shape", 2),
        ("stalk-root", 5),
        ("stalk-surface-above-ring", 4),
        ("stalk-surface-below-ring", 4),
        ("stalk-color-above-ring", 9),
        ("stalk-color-below-ring", 9),
        ("veil-type", 1),
        ("veil-color", 4),
        ("ring-number", 3),
        ("ring-type", 5),
        ("spore-print-color", 9),
        ("population", 6),
        ("habitat", 7),
    ];
    let noise_cycle = [0.01, 0.03, 0.05];
    let attrs = specs
        .iter()
        .enumerate()
        .map(|(i, (name, arity))| AttrSpec::new(*name, *arity, noise_cycle[i % noise_cycle.len()]))
        .collect();
    // Latent cluster sizes after Table 1 (classes: 0 = poisonous,
    // 1 = edible): 4208 edible + 3916 poisonous = 8124.
    let sizes = [
        2864.0, 808.0, 1296.0, 1768.0, 1056.0, 96.0, 192.0, 36.0, 8.0,
    ];
    let classes = vec![1, 0, 0, 0, 1, 1, 1, 0, 0];
    LatentClassConfig {
        name: "mushrooms-like".into(),
        n: 8124,
        cluster_weights: sizes.to_vec(),
        cluster_to_class: classes,
        class_names: vec!["poisonous".into(), "edible".into()],
        attrs,
        missing_count: 2480,
        row_noise_levels: vec![(0.93, 1.0), (0.07, 2.5)],
        // Overlapping profiles reproduce the impure clusters of the paper's
        // Table 1: the 808-poisonous cluster shares most physical
        // characteristics with the 2864-edible one (they merge into the
        // mixed c1), and the small 96-edible cluster shadows the
        // 1768-poisonous one (merging into c4).
        profile_overlaps: vec![(1, 0, 4), (5, 3, 3)],
        seed,
    }
    .generate()
}

/// Census-(Adult-)shaped dataset: 32561 rows, the 8 categorical attributes
/// with their real arities plus 6 numeric columns; ~24% of rows in the
/// `>50K` class. 55 Zipf-sized latent clusters model the fine social-group
/// structure the paper reports (50–60 clusters discovered).
///
/// Use [`census_like_scaled`] for smaller row counts in quick runs.
pub fn census_like(seed: u64) -> (CategoricalDataset, Vec<u32>) {
    census_like_scaled(32561, seed)
}

/// [`census_like`] with a custom row count (same cluster structure).
pub fn census_like_scaled(n: usize, seed: u64) -> (CategoricalDataset, Vec<u32>) {
    let cat_specs: [(&str, u16); 8] = [
        ("workclass", 9),
        ("education", 16),
        ("marital-status", 7),
        ("occupation", 15),
        ("relationship", 6),
        ("race", 5),
        ("sex", 2),
        ("native-country", 42),
    ];
    let attrs = cat_specs
        .iter()
        .map(|(name, arity)| AttrSpec::new(*name, *arity, 0.18))
        .collect();

    let k = 55usize;
    // Zipf-ish cluster sizes.
    let weights: Vec<f64> = (0..k).map(|i| 1.0 / (i as f64 + 1.5)).collect();
    // Assign ~24% of the probability mass to the >50K class, biased toward
    // a subset of clusters (high earners are a minority of social groups).
    let total: f64 = weights.iter().sum();
    let mut classes = vec![0u32; k];
    let mut rich = 0.0;
    for i in (0..k).rev() {
        // Walk from the smallest clusters upward, flipping clusters to
        // class 1 until ~24% of the mass is covered; also flip cluster 1
        // (a large high-earner group exists in the real data).
        if rich / total < 0.18 {
            classes[i] = 1;
            rich += weights[i];
        }
    }
    classes[1] = 1;

    let (ds, latent) = LatentClassConfig {
        name: "census-like".into(),
        n,
        cluster_weights: weights,
        cluster_to_class: classes,
        class_names: vec!["<=50K".into(), ">50K".into()],
        attrs,
        missing_count: 0,
        row_noise_levels: vec![(0.85, 1.0), (0.15, 1.8)],
        profile_overlaps: vec![],
        seed,
    }
    .generate();

    // Income is only probabilistically determined by social group: rows in
    // "high-earner" clusters are >50K with probability 0.62, others with
    // probability 0.10 (≈ 22% >50K overall, and ≈ 17% classification error
    // even for a perfect clustering — matching the paper's 24% at k ≈ 54
    // and the 14–21% of supervised classifiers).
    let mut class_rng = StdRng::seed_from_u64(seed ^ 0x5bd1e995);
    let old_classes: Vec<u32> = ds.class_labels().to_vec();
    let noisy_classes: Vec<u32> = old_classes
        .iter()
        .map(|&c| {
            let p_rich = if c == 1 { 0.62 } else { 0.10 };
            u32::from(class_rng.gen::<f64>() < p_rich)
        })
        .collect();
    let ds = ds.with_class_labels(noisy_classes, vec!["<=50K".into(), ">50K".into()]);

    // Numeric columns: per-cluster Gaussian profiles.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let numeric_specs: [(&str, f64, f64, f64); 6] = [
        // (name, mean-of-means, spread-of-means, within-cluster sd)
        ("age", 40.0, 12.0, 8.0),
        ("fnlwgt", 190_000.0, 60_000.0, 40_000.0),
        ("education-num", 10.0, 3.0, 1.5),
        ("capital-gain", 1_000.0, 2_500.0, 800.0),
        ("capital-loss", 90.0, 150.0, 60.0),
        ("hours-per-week", 40.0, 8.0, 6.0),
    ];
    let mut columns = Vec::with_capacity(6);
    for (name, mm, sm, sd) in numeric_specs {
        let cluster_means: Vec<f64> = (0..k).map(|_| mm + sm * gaussian(&mut rng)).collect();
        let values: Vec<Option<f64>> = latent
            .iter()
            .map(|&z| Some((cluster_means[z as usize] + sd * gaussian(&mut rng)).max(0.0)))
            .collect();
        columns.push(NumericColumn {
            name: name.into(),
            values,
        });
    }
    (ds.with_numeric(columns), latent)
}

/// Standard normal via Box–Muller (keeps the dependency surface at `rand`).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn votes_shape_matches_paper() {
        let (ds, latent) = votes_like(1);
        assert_eq!(ds.len(), 435);
        assert_eq!(ds.attributes().len(), 16);
        assert!(ds.attributes().iter().all(|a| a.arity == 2));
        assert_eq!(ds.num_missing(), 288);
        assert_eq!(ds.class_names(), vec!["democrat", "republican"]);
        assert_eq!(latent.len(), 435);
        // Class balance ≈ 267/168.
        let dem = ds.class_labels().iter().filter(|&&c| c == 0).count();
        assert!((230..=300).contains(&dem), "dem = {dem}");
    }

    #[test]
    fn mushrooms_shape_matches_paper() {
        let (ds, _) = mushrooms_like(1);
        assert_eq!(ds.len(), 8124);
        assert_eq!(ds.attributes().len(), 22);
        assert_eq!(ds.num_missing(), 2480);
        // Constant attribute preserved.
        assert_eq!(ds.attributes()[15].name, "veil-type");
        assert_eq!(ds.attributes()[15].arity, 1);
        // Class balance ≈ 4208 edible (class 1).
        let edible = ds.class_labels().iter().filter(|&&c| c == 1).count();
        assert!((3900..=4500).contains(&edible), "edible = {edible}");
    }

    #[test]
    fn census_shape_matches_paper() {
        let (ds, latent) = census_like_scaled(2000, 1);
        assert_eq!(ds.len(), 2000);
        assert_eq!(ds.attributes().len(), 8);
        assert_eq!(ds.numeric_columns().len(), 6);
        assert!(latent.iter().all(|&z| z < 55));
        // >50K share roughly a quarter.
        let rich = ds.class_labels().iter().filter(|&&c| c == 1).count() as f64 / 2000.0;
        assert!((0.10..=0.40).contains(&rich), "rich share = {rich}");
    }

    #[test]
    fn presets_are_deterministic() {
        let (a, _) = votes_like(7);
        let (b, _) = votes_like(7);
        for r in 0..a.len() {
            assert_eq!(a.row(r), b.row(r));
        }
    }

    #[test]
    fn numeric_columns_have_cluster_structure() {
        let (ds, latent) = census_like_scaled(3000, 3);
        // Rows of the same latent cluster should have more similar ages
        // than rows overall: compare within-cluster variance to total.
        let ages: Vec<f64> = ds.numeric_columns()[0]
            .values
            .iter()
            .map(|v| v.unwrap())
            .collect();
        let mean = ages.iter().sum::<f64>() / ages.len() as f64;
        let total_var = ages.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / ages.len() as f64;
        // Within-cluster variance of the largest cluster.
        let big: Vec<f64> = latent
            .iter()
            .zip(&ages)
            .filter(|(&z, _)| z == 0)
            .map(|(_, &a)| a)
            .collect();
        let bmean = big.iter().sum::<f64>() / big.len() as f64;
        let bvar = big.iter().map(|a| (a - bmean).powi(2)).sum::<f64>() / big.len() as f64;
        assert!(bvar < total_var, "within {bvar} vs total {total_var}");
    }
}
