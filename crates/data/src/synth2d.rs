//! Two-dimensional synthetic point sets for the robustness experiments
//! (Figures 3–5 of the paper).
//!
//! * [`seven_groups`] — the "seven perceptually distinct groups" dataset of
//!   Figure 3, deliberately containing features that trip up the classic
//!   algorithms: uneven cluster sizes, elongated clusters, and a narrow
//!   bridge of points connecting two blobs (single linkage merges them,
//!   k-means splits the elongated ones, and so on).
//! * [`gaussian_with_noise`] — `k*` Gaussian clusters in the unit square
//!   plus a fraction of uniform background noise (Figures 4 and 5-right).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 2-D point.
pub type Point2 = [f64; 2];

/// Points with generative ground truth; `None` marks background noise.
#[derive(Clone, Debug)]
pub struct LabeledPoints {
    /// The points.
    pub points: Vec<Point2>,
    /// Ground-truth group of each point (`None` = noise/outlier).
    pub truth: Vec<Option<u32>>,
}

impl LabeledPoints {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of distinct non-noise groups.
    pub fn num_groups(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for t in self.truth.iter().flatten() {
            seen.insert(*t);
        }
        seen.len()
    }

    /// Points as owned `Vec<f64>` rows (the format the baseline clusterers
    /// consume).
    pub fn rows(&self) -> Vec<Vec<f64>> {
        self.points.iter().map(|p| p.to_vec()).collect()
    }

    /// Ground truth as a total clustering, with every noise point in its
    /// own singleton cluster.
    pub fn truth_clustering(&self) -> aggclust_core::clustering::Clustering {
        let mut next = self
            .truth
            .iter()
            .flatten()
            .copied()
            .max()
            .map_or(0, |m| m + 1);
        let labels = self
            .truth
            .iter()
            .map(|t| match t {
                Some(l) => *l,
                None => {
                    let id = next;
                    next += 1;
                    id
                }
            })
            .collect();
        aggclust_core::clustering::Clustering::from_labels(labels)
    }
}

fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The Figure-3 dataset: seven groups on a 10 × 10 canvas, ~870 points.
///
/// Groups (sizes vary deliberately):
/// 0. large loose blob, 1. small tight blob, 2–3. two blobs joined by a
/// narrow 40-point bridge (bridge points split between them at the
/// midpoint), 4. elongated horizontal strip, 5. elongated diagonal strip,
/// 6. medium blob.
pub fn seven_groups(seed: u64) -> LabeledPoints {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::new();
    let mut truth = Vec::new();

    let blob = |rng: &mut StdRng,
                points: &mut Vec<Point2>,
                truth: &mut Vec<Option<u32>>,
                group: u32,
                count: usize,
                cx: f64,
                cy: f64,
                sd: f64| {
        for _ in 0..count {
            points.push([cx + sd * gauss(rng), cy + sd * gauss(rng)]);
            truth.push(Some(group));
        }
    };

    blob(&mut rng, &mut points, &mut truth, 0, 180, 2.0, 7.5, 0.8);
    blob(&mut rng, &mut points, &mut truth, 1, 50, 5.2, 8.6, 0.2);
    blob(&mut rng, &mut points, &mut truth, 2, 120, 1.5, 2.5, 0.45);
    blob(&mut rng, &mut points, &mut truth, 3, 120, 4.8, 2.5, 0.45);
    // Narrow bridge between groups 2 and 3.
    for i in 0..40 {
        let t = (i as f64 + 0.5) / 40.0;
        let x = 1.5 + t * (4.8 - 1.5);
        let y = 2.5 + 0.06 * gauss(&mut rng);
        points.push([x + 0.04 * gauss(&mut rng), y]);
        truth.push(Some(if x < (1.5 + 4.8) / 2.0 { 2 } else { 3 }));
    }
    // Elongated horizontal strip.
    for _ in 0..140 {
        let x = rng.gen_range(6.3..9.7);
        let y = 1.4 + 0.15 * gauss(&mut rng);
        points.push([x, y]);
        truth.push(Some(4));
    }
    // Elongated diagonal strip.
    for _ in 0..100 {
        let t: f64 = rng.gen();
        let x = 6.5 + 2.5 * t + 0.15 * gauss(&mut rng);
        let y = 3.8 + 2.0 * t + 0.15 * gauss(&mut rng);
        points.push([x, y]);
        truth.push(Some(5));
    }
    blob(&mut rng, &mut points, &mut truth, 6, 90, 8.7, 8.4, 0.5);

    LabeledPoints { points, truth }
}

/// The Figure-4 / Figure-5 generator: `k` Gaussian clusters of
/// `per_cluster` points each with standard deviation `sd`, centers uniform
/// in the unit square, plus `noise_frac` (of the clustered total) uniform
/// background points labeled as noise (`None`).
pub fn gaussian_with_noise(
    k: usize,
    per_cluster: usize,
    noise_frac: f64,
    sd: f64,
    seed: u64,
) -> LabeledPoints {
    assert!(k >= 1, "need at least one cluster");
    assert!(
        (0.0..=10.0).contains(&noise_frac),
        "noise_frac out of range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Rejection-sample centers to keep them separated by ≥ 12·sd, so the
    // "correct" k is well-defined (the paper's clusters are visually
    // distinct). Falls back to the last draw after 200 tries.
    let mut centers: Vec<Point2> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut candidate = [rng.gen::<f64>(), rng.gen::<f64>()];
        for _try in 0..200 {
            let ok = centers.iter().all(|c| {
                let dx = c[0] - candidate[0];
                let dy = c[1] - candidate[1];
                (dx * dx + dy * dy).sqrt() >= 12.0 * sd
            });
            if ok {
                break;
            }
            candidate = [rng.gen::<f64>(), rng.gen::<f64>()];
        }
        centers.push(candidate);
    }

    let mut points = Vec::new();
    let mut truth = Vec::new();
    for (g, c) in centers.iter().enumerate() {
        for _ in 0..per_cluster {
            points.push([c[0] + sd * gauss(&mut rng), c[1] + sd * gauss(&mut rng)]);
            truth.push(Some(g as u32));
        }
    }
    let noise = ((k * per_cluster) as f64 * noise_frac).round() as usize;
    for _ in 0..noise {
        points.push([rng.gen(), rng.gen()]);
        truth.push(None);
    }
    LabeledPoints { points, truth }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_groups_has_seven_groups() {
        let d = seven_groups(1);
        assert_eq!(d.num_groups(), 7);
        assert!(d.len() > 700);
        assert_eq!(d.points.len(), d.truth.len());
    }

    #[test]
    fn seven_groups_deterministic() {
        let a = seven_groups(5);
        let b = seven_groups(5);
        assert_eq!(a.points, b.points);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn group_sizes_are_uneven() {
        let d = seven_groups(1);
        let mut counts = vec![0usize; 7];
        for t in d.truth.iter().flatten() {
            counts[*t as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > 2 * min, "sizes {counts:?} not uneven enough");
    }

    #[test]
    fn gaussian_with_noise_counts() {
        let d = gaussian_with_noise(5, 100, 0.2, 0.03, 9);
        assert_eq!(d.len(), 5 * 100 + 100);
        assert_eq!(d.num_groups(), 5);
        let noise = d.truth.iter().filter(|t| t.is_none()).count();
        assert_eq!(noise, 100);
    }

    #[test]
    fn gaussian_clusters_are_tight() {
        let d = gaussian_with_noise(3, 100, 0.0, 0.02, 4);
        // Points of the same group stay near each other: the mean
        // intra-group distance must be far below the unit-square scale.
        let mut intra = 0.0;
        let mut count = 0usize;
        for i in 0..d.len() {
            for j in (i + 1)..d.len() {
                if d.truth[i] == d.truth[j] {
                    let dx = d.points[i][0] - d.points[j][0];
                    let dy = d.points[i][1] - d.points[j][1];
                    intra += (dx * dx + dy * dy).sqrt();
                    count += 1;
                }
            }
        }
        assert!((intra / count as f64) < 0.15);
    }

    #[test]
    fn truth_clustering_makes_noise_singletons() {
        let d = gaussian_with_noise(2, 10, 0.5, 0.02, 3);
        let c = d.truth_clustering();
        assert_eq!(c.len(), 30);
        assert_eq!(c.num_clusters(), 2 + 10);
        assert_eq!(c.num_singletons(), 10);
    }

    #[test]
    fn rows_match_points() {
        let d = gaussian_with_noise(2, 5, 0.0, 0.02, 3);
        let rows = d.rows();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[3], d.points[3].to_vec());
    }
}
