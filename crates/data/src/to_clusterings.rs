//! The categorical-data application of the paper (§2): view each attribute
//! as a clustering of the rows.
//!
//! An attribute with `k_j` distinct values partitions the rows into `k_j`
//! clusters, one per value; rows where the attribute is missing carry no
//! label (handled downstream by
//! [`aggclust_core::instance::MissingPolicy`]). Numeric side columns are
//! quantile-binned into the requested number of clusters first — the
//! "vertically partitioned heterogeneous data" treatment of §2.

use crate::categorical::{CategoricalDataset, NumericColumn};
use aggclust_core::clustering::PartialClustering;

/// One clustering per categorical attribute, missing labels preserved.
pub fn attribute_clusterings(ds: &CategoricalDataset) -> Vec<PartialClustering> {
    (0..ds.attributes().len())
        .map(|j| attribute_clustering(ds, j))
        .collect()
}

/// The clustering induced by a single categorical attribute.
pub fn attribute_clustering(ds: &CategoricalDataset, attr: usize) -> PartialClustering {
    let labels = (0..ds.len())
        .map(|r| ds.value(r, attr).map(|v| v as u32))
        .collect();
    PartialClustering::from_labels(labels)
}

/// Quantile-bin a numeric column into `bins` clusters: rank the defined
/// values and split ranks into equal-frequency bins. Missing values stay
/// missing. Ties are kept in the same bin when they fall in the same rank
/// range (equal values may straddle a bin edge; rank order among equals is
/// by row index, which is deterministic).
///
/// Note: the returned labels are normalized in first-appearance order like
/// every [`PartialClustering`], so label values are *not* monotone in the
/// numeric values — but each bin is always a contiguous range of the
/// sorted values (property-tested), which is all aggregation consumes.
pub fn quantile_binning(col: &NumericColumn, bins: usize) -> PartialClustering {
    assert!(bins >= 1, "need at least one bin");
    let n = col.values.len();
    let mut defined: Vec<usize> = (0..n).filter(|&r| col.values[r].is_some()).collect();
    defined.sort_by(|&a, &b| {
        col.values[a]
            .partial_cmp(&col.values[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut labels: Vec<Option<u32>> = vec![None; n];
    let d = defined.len();
    for (rank, &row) in defined.iter().enumerate() {
        let bin = (rank * bins).checked_div(d).unwrap_or(0);
        labels[row] = Some(bin.min(bins - 1) as u32);
    }
    PartialClustering::from_labels(labels)
}

/// All clusterings for a heterogeneous dataset: one per categorical
/// attribute plus one quantile-binned clustering per numeric column.
pub fn heterogeneous_clusterings(
    ds: &CategoricalDataset,
    numeric_bins: usize,
) -> Vec<PartialClustering> {
    let mut out = attribute_clusterings(ds);
    for col in ds.numeric_columns() {
        out.push(quantile_binning(col, numeric_bins));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorical::{Attribute, CategoricalDataset};

    fn small_dataset() -> CategoricalDataset {
        // 4 rows × 2 attributes.
        CategoricalDataset::new(
            "small",
            vec![
                Attribute {
                    name: "color".into(),
                    arity: 3,
                },
                Attribute {
                    name: "shape".into(),
                    arity: 2,
                },
            ],
            vec![
                Some(0),
                Some(1),
                Some(0),
                None,
                Some(2),
                Some(1),
                Some(2),
                Some(0),
            ],
            vec![0, 0, 1, 1],
            vec!["x".into(), "y".into()],
        )
    }

    #[test]
    fn one_clustering_per_attribute() {
        let ds = small_dataset();
        let cs = attribute_clusterings(&ds);
        assert_eq!(cs.len(), 2);
        // Attribute 0 values are [0, 0, 2, 2]: rows 0–1 together, 2–3
        // together, and the two groups apart.
        assert_eq!(cs[0].label(0), cs[0].label(1));
        assert_eq!(cs[0].label(2), cs[0].label(3));
        assert_ne!(cs[0].label(0), cs[0].label(2));
        // Attribute 1: row 1 is missing.
        assert_eq!(cs[1].label(1), None);
        assert_eq!(cs[1].num_missing(), 1);
    }

    #[test]
    fn same_value_means_same_cluster() {
        let ds = small_dataset();
        let c0 = attribute_clustering(&ds, 0);
        for r1 in 0..4 {
            for r2 in 0..4 {
                if let (Some(v1), Some(v2)) = (ds.value(r1, 0), ds.value(r2, 0)) {
                    assert_eq!(v1 == v2, c0.label(r1) == c0.label(r2));
                }
            }
        }
    }

    #[test]
    fn quantile_binning_equal_frequency() {
        let col = NumericColumn {
            name: "v".into(),
            values: (0..12).map(|i| Some(i as f64)).collect(),
        };
        let c = quantile_binning(&col, 3);
        assert_eq!(c.num_clusters(), 3);
        // 12 values into 3 bins of 4.
        let mut counts = [0usize; 3];
        for r in 0..12 {
            counts[c.label(r).unwrap() as usize] += 1;
        }
        assert_eq!(counts, [4, 4, 4]);
        // Ordering respected: rows with smaller values get bin ≤ larger.
        assert!(c.label(0).unwrap() <= c.label(11).unwrap());
    }

    #[test]
    fn quantile_binning_keeps_missing() {
        let col = NumericColumn {
            name: "v".into(),
            values: vec![Some(1.0), None, Some(3.0), Some(2.0)],
        };
        let c = quantile_binning(&col, 2);
        assert_eq!(c.label(1), None);
        assert_eq!(c.num_missing(), 1);
    }

    #[test]
    fn quantile_binning_more_bins_than_values() {
        let col = NumericColumn {
            name: "v".into(),
            values: vec![Some(1.0), Some(2.0)],
        };
        let c = quantile_binning(&col, 10);
        assert_ne!(c.label(0), c.label(1));
    }

    #[test]
    fn heterogeneous_includes_numeric() {
        let ds = small_dataset().with_numeric(vec![NumericColumn {
            name: "age".into(),
            values: vec![Some(10.0), Some(20.0), Some(30.0), Some(40.0)],
        }]);
        let cs = heterogeneous_clusterings(&ds, 2);
        assert_eq!(cs.len(), 3);
        let age = &cs[2];
        assert_eq!(age.label(0), age.label(1));
        assert_eq!(age.label(2), age.label(3));
        assert_ne!(age.label(0), age.label(2));
    }
}
