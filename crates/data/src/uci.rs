//! Parsers for the real UCI files used in the paper, so that the
//! experiments can run on the genuine data when it is available.
//!
//! Place the files (from the UCI Machine Learning Repository) under a
//! directory of your choice and point the loaders at them:
//!
//! * `house-votes-84.data` — [`load_votes`]
//! * `agaricus-lepiota.data` — [`load_mushrooms`]
//! * `adult.data` — [`load_census`]
//!
//! All three are simple comma-separated formats with `?` marking missing
//! values. Attribute values are interned in first-appearance order.

use crate::categorical::{Attribute, CategoricalDataset, NumericColumn};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors raised while reading a UCI file.
#[derive(Debug)]
pub enum UciError {
    /// Underlying I/O failure (including file-not-found).
    Io(std::io::Error),
    /// A malformed record.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
}

impl fmt::Display for UciError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UciError::Io(e) => write!(f, "I/O error: {e}"),
            UciError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for UciError {}

impl From<std::io::Error> for UciError {
    fn from(e: std::io::Error) -> Self {
        UciError::Io(e)
    }
}

/// Incrementally interns string values into dense `u16` codes per column.
struct Interner {
    maps: Vec<HashMap<String, u16>>,
}

impl Interner {
    fn new(columns: usize) -> Self {
        Interner {
            maps: (0..columns).map(|_| HashMap::new()).collect(),
        }
    }

    fn intern(&mut self, column: usize, value: &str) -> u16 {
        let map = &mut self.maps[column];
        if let Some(&v) = map.get(value) {
            return v;
        }
        let v = map.len() as u16;
        map.insert(value.to_string(), v);
        v
    }

    fn arities(&self) -> Vec<u16> {
        self.maps.iter().map(|m| m.len().max(1) as u16).collect()
    }
}

/// Load the Congressional Voting Records dataset
/// (`house-votes-84.data`: class followed by 16 y/n/? votes).
pub fn load_votes(path: impl AsRef<Path>) -> Result<CategoricalDataset, UciError> {
    let text = fs::read_to_string(path)?;
    let mut interner = Interner::new(16);
    let mut values = Vec::new();
    let mut class_labels = Vec::new();
    let mut class_names: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 17 {
            return Err(UciError::Parse {
                line: lineno + 1,
                message: format!("expected 17 fields, got {}", fields.len()),
            });
        }
        class_labels.push(intern_class(&mut class_names, fields[0]));
        for (j, &f) in fields[1..].iter().enumerate() {
            values.push(match f {
                "?" => None,
                other => Some(interner.intern(j, other)),
            });
        }
    }
    let attrs = interner
        .arities()
        .into_iter()
        .enumerate()
        .map(|(i, arity)| Attribute {
            name: format!("issue-{:02}", i + 1),
            arity,
        })
        .collect();
    Ok(CategoricalDataset::new(
        "votes (UCI)",
        attrs,
        values,
        class_labels,
        class_names,
    ))
}

/// Load the Mushroom dataset (`agaricus-lepiota.data`: class followed by 22
/// single-character attributes).
pub fn load_mushrooms(path: impl AsRef<Path>) -> Result<CategoricalDataset, UciError> {
    const NAMES: [&str; 22] = [
        "cap-shape",
        "cap-surface",
        "cap-color",
        "bruises",
        "odor",
        "gill-attachment",
        "gill-spacing",
        "gill-size",
        "gill-color",
        "stalk-shape",
        "stalk-root",
        "stalk-surface-above-ring",
        "stalk-surface-below-ring",
        "stalk-color-above-ring",
        "stalk-color-below-ring",
        "veil-type",
        "veil-color",
        "ring-number",
        "ring-type",
        "spore-print-color",
        "population",
        "habitat",
    ];
    let text = fs::read_to_string(path)?;
    let mut interner = Interner::new(22);
    let mut values = Vec::new();
    let mut class_labels = Vec::new();
    let mut class_names: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 23 {
            return Err(UciError::Parse {
                line: lineno + 1,
                message: format!("expected 23 fields, got {}", fields.len()),
            });
        }
        class_labels.push(intern_class(
            &mut class_names,
            match fields[0] {
                "p" => "poisonous",
                "e" => "edible",
                other => other,
            },
        ));
        for (j, &f) in fields[1..].iter().enumerate() {
            values.push(match f {
                "?" => None,
                other => Some(interner.intern(j, other)),
            });
        }
    }
    let attrs = interner
        .arities()
        .into_iter()
        .zip(NAMES)
        .map(|(arity, name)| Attribute {
            name: name.to_string(),
            arity,
        })
        .collect();
    Ok(CategoricalDataset::new(
        "mushrooms (UCI)",
        attrs,
        values,
        class_labels,
        class_names,
    ))
}

/// Load the Census/Adult dataset (`adult.data`: 14 attributes then the
/// income class). Returns the 8 categorical attributes as the dataset body
/// and the 6 numeric attributes as numeric side columns.
pub fn load_census(path: impl AsRef<Path>) -> Result<CategoricalDataset, UciError> {
    // Field layout of adult.data.
    const CATEGORICAL: [(usize, &str); 8] = [
        (1, "workclass"),
        (3, "education"),
        (5, "marital-status"),
        (6, "occupation"),
        (7, "relationship"),
        (8, "race"),
        (9, "sex"),
        (13, "native-country"),
    ];
    const NUMERIC: [(usize, &str); 6] = [
        (0, "age"),
        (2, "fnlwgt"),
        (4, "education-num"),
        (10, "capital-gain"),
        (11, "capital-loss"),
        (12, "hours-per-week"),
    ];
    let text = fs::read_to_string(path)?;
    let mut interner = Interner::new(CATEGORICAL.len());
    let mut values = Vec::new();
    let mut class_labels = Vec::new();
    let mut class_names: Vec<String> = Vec::new();
    let mut numeric_values: Vec<Vec<Option<f64>>> = vec![Vec::new(); NUMERIC.len()];
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 15 {
            return Err(UciError::Parse {
                line: lineno + 1,
                message: format!("expected 15 fields, got {}", fields.len()),
            });
        }
        class_labels.push(intern_class(&mut class_names, fields[14]));
        for (j, (idx, _)) in CATEGORICAL.iter().enumerate() {
            values.push(match fields[*idx] {
                "?" => None,
                other => Some(interner.intern(j, other)),
            });
        }
        for (j, (idx, _)) in NUMERIC.iter().enumerate() {
            numeric_values[j].push(match fields[*idx] {
                "?" => None,
                other => Some(other.parse::<f64>().map_err(|e| UciError::Parse {
                    line: lineno + 1,
                    message: format!("bad numeric field {other:?}: {e}"),
                })?),
            });
        }
    }
    let attrs = interner
        .arities()
        .into_iter()
        .zip(CATEGORICAL.iter())
        .map(|(arity, (_, name))| Attribute {
            name: name.to_string(),
            arity,
        })
        .collect();
    let numeric = numeric_values
        .into_iter()
        .zip(NUMERIC.iter())
        .map(|(vals, (_, name))| NumericColumn {
            name: name.to_string(),
            values: vals,
        })
        .collect();
    Ok(
        CategoricalDataset::new("census (UCI)", attrs, values, class_labels, class_names)
            .with_numeric(numeric),
    )
}

fn intern_class(names: &mut Vec<String>, value: &str) -> u32 {
    if let Some(i) = names.iter().position(|n| n == value) {
        return i as u32;
    }
    names.push(value.to_string());
    (names.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("aggclust-test-{name}"));
        let mut f = fs::File::create(&path).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        path
    }

    #[test]
    fn votes_roundtrip() {
        let content = "republican,n,y,?,y,y,y,n,n,n,y,?,y,y,y,n,y\n\
                       democrat,y,n,y,n,n,n,y,y,y,n,n,n,n,n,y,y\n";
        let path = write_temp("votes.data", content);
        let ds = load_votes(&path).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.attributes().len(), 16);
        assert_eq!(ds.num_missing(), 2);
        assert_eq!(ds.class_names(), vec!["republican", "democrat"]);
        // Same string → same code within a column.
        assert_eq!(
            ds.value(0, 1),
            ds.value(1, 0).map(|_| ds.value(0, 1).unwrap())
        );
        fs::remove_file(path).ok();
    }

    #[test]
    fn votes_bad_field_count() {
        let path = write_temp("votes-bad.data", "republican,n,y\n");
        let err = load_votes(&path).unwrap_err();
        assert!(matches!(err, UciError::Parse { line: 1, .. }));
        fs::remove_file(path).ok();
    }

    #[test]
    fn mushrooms_roundtrip() {
        let row = |class: &str| format!("{class},x,s,n,t,p,f,c,n,k,e,?,s,s,w,w,p,w,o,p,k,s,u");
        let content = format!("{}\n{}\n", row("p"), row("e"));
        let path = write_temp("mushrooms.data", &content);
        let ds = load_mushrooms(&path).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.attributes().len(), 22);
        assert_eq!(ds.num_missing(), 2); // the two '?' in stalk-root
        assert_eq!(ds.class_names(), vec!["poisonous", "edible"]);
        fs::remove_file(path).ok();
    }

    #[test]
    fn census_roundtrip() {
        let content = "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical, Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K\n\
                       50, ?, 83311, Bachelors, 13, Married-civ-spouse, Exec-managerial, Husband, White, Male, 0, 0, 13, United-States, >50K\n";
        let path = write_temp("adult.data", content);
        let ds = load_census(&path).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.attributes().len(), 8);
        assert_eq!(ds.numeric_columns().len(), 6);
        assert_eq!(ds.num_missing(), 1); // the '?' workclass
        assert_eq!(ds.numeric_columns()[0].values[0], Some(39.0));
        assert_eq!(ds.class_names(), vec!["<=50K", ">50K"]);
        fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_votes("/nonexistent/votes.data").unwrap_err();
        assert!(matches!(err, UciError::Io(_)));
    }
}
