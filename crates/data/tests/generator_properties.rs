//! Property-based tests for the dataset generators.

use aggclust_data::categorical::NumericColumn;
use aggclust_data::categorical::{AttrSpec, LatentClassConfig};
use aggclust_data::synth2d::{gaussian_with_noise, seven_groups};
use aggclust_data::to_clusterings::{attribute_clusterings, quantile_binning};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = LatentClassConfig> {
    (
        10usize..120, // n
        1usize..5,    // latent clusters
        1usize..6,    // attributes
        0.0f64..0.5,  // noise
        any::<u64>(), // seed
    )
        .prop_map(|(n, k, a, noise, seed)| {
            let attrs = (0..a)
                .map(|i| AttrSpec::new(format!("a{i}"), 2 + (i as u16 % 4), noise))
                .collect();
            LatentClassConfig {
                name: "prop".into(),
                n,
                cluster_weights: (0..k).map(|i| 1.0 + i as f64).collect(),
                cluster_to_class: (0..k).map(|i| (i % 2) as u32).collect(),
                class_names: vec!["a".into(), "b".into()],
                attrs,
                missing_count: n / 10,
                row_noise_levels: vec![(0.8, 1.0), (0.2, 2.0)],
                profile_overlaps: vec![],
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_datasets_are_well_formed(cfg in config_strategy()) {
        let (ds, latent) = cfg.generate();
        prop_assert_eq!(ds.len(), cfg.n);
        prop_assert_eq!(ds.num_missing(), cfg.missing_count);
        prop_assert_eq!(latent.len(), cfg.n);
        let k = cfg.cluster_weights.len() as u32;
        prop_assert!(latent.iter().all(|&z| z < k));
        // Values in range; classes follow the latent map.
        for (r, &z) in latent.iter().enumerate() {
            for (j, attr) in ds.attributes().iter().enumerate() {
                if let Some(v) = ds.value(r, j) {
                    prop_assert!(v < attr.arity);
                }
            }
            prop_assert_eq!(ds.class_labels()[r], cfg.cluster_to_class[z as usize]);
        }
    }

    #[test]
    fn generation_is_deterministic(cfg in config_strategy()) {
        let (a, la) = cfg.generate();
        let (b, lb) = cfg.generate();
        prop_assert_eq!(la, lb);
        for r in 0..a.len() {
            prop_assert_eq!(a.row(r), b.row(r));
        }
    }

    #[test]
    fn attribute_clusterings_reflect_values(cfg in config_strategy()) {
        let (ds, _) = cfg.generate();
        let cs = attribute_clusterings(&ds);
        prop_assert_eq!(cs.len(), ds.attributes().len());
        for (j, c) in cs.iter().enumerate() {
            prop_assert_eq!(c.len(), ds.len());
            for r1 in 0..ds.len().min(12) {
                for r2 in 0..ds.len().min(12) {
                    match (ds.value(r1, j), ds.value(r2, j)) {
                        (Some(a), Some(b)) => {
                            prop_assert_eq!(a == b, c.label(r1) == c.label(r2))
                        }
                        (None, _) => prop_assert_eq!(c.label(r1), None),
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn quantile_bins_are_contiguous_value_ranges(
        (values, bins) in (prop::collection::vec(0.0f64..100.0, 3..60), 1usize..8)
    ) {
        // Labels are normalized (first-appearance order), so monotone
        // label values are NOT guaranteed — but each bin must still be a
        // contiguous range of the sorted values: if two rows share a bin,
        // every row with a value between theirs shares it too.
        let col = NumericColumn {
            name: "v".into(),
            values: values.iter().map(|&v| Some(v)).collect(),
        };
        let c = quantile_binning(&col, bins);
        prop_assert!(c.num_clusters() <= bins);
        for i in 0..values.len() {
            for j in 0..values.len() {
                if c.label(i) != c.label(j) {
                    continue;
                }
                let (lo, hi) = (values[i].min(values[j]), values[i].max(values[j]));
                for (k, &vk) in values.iter().enumerate() {
                    if vk > lo && vk < hi {
                        prop_assert_eq!(
                            c.label(k), c.label(i),
                            "bin not contiguous: {} between {} and {}",
                            vk, lo, hi
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gaussian_noise_shape((k, per, seed) in (1usize..6, 5usize..40, any::<u64>())) {
        let d = gaussian_with_noise(k, per, 0.2, 0.02, seed);
        prop_assert_eq!(d.num_groups(), k);
        let noise = d.truth.iter().filter(|t| t.is_none()).count();
        prop_assert_eq!(noise, ((k * per) as f64 * 0.2).round() as usize);
        prop_assert_eq!(d.len(), k * per + noise);
    }

    #[test]
    fn seven_groups_always_has_seven(seed in any::<u64>()) {
        let d = seven_groups(seed);
        prop_assert_eq!(d.num_groups(), 7);
        prop_assert_eq!(d.truth_clustering().num_clusters(), 7);
    }
}
