//! The disagreement error `E_D` — the objective the aggregation algorithms
//! optimize, reported in Tables 2 and 3 of the paper.

use aggclust_core::clustering::Clustering;
use aggclust_core::cost::{correlation_cost, lower_bound};
use aggclust_core::instance::DistanceOracle;

/// Exact disagreement error `E_D = D(C) = Σ_i d_V(C_i, C)` against total
/// input clusterings.
pub fn disagreement_error(inputs: &[Clustering], candidate: &Clustering) -> u64 {
    aggclust_core::distance::total_disagreement(inputs, candidate)
}

/// Expected disagreement error `E_D = m · d(C)` for instances built with a
/// missing-value policy (disagreements are fractional in expectation under
/// the coin model).
pub fn expected_disagreement_error<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    candidate: &Clustering,
) -> f64 {
    let m = oracle.num_clusterings();
    assert!(m.is_some(), "oracle does not carry a clustering count");
    m.unwrap_or(0) as f64 * correlation_cost(oracle, candidate)
}

/// Lower bound on the expected disagreement error of *any* clustering:
/// `m · Σ_{u<v} min(X_uv, 1 − X_uv)` — the "Lower bound" rows of Tables 2–3.
pub fn disagreement_lower_bound<O: DistanceOracle + Sync + ?Sized>(oracle: &O) -> f64 {
    let m = oracle.num_clusterings();
    assert!(m.is_some(), "oracle does not carry a clustering count");
    m.unwrap_or(0) as f64 * lower_bound(oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggclust_core::instance::DenseOracle;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    #[test]
    fn figure1_disagreement_error() {
        let inputs = vec![
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ];
        let agg = c(&[0, 1, 0, 1, 2, 2]);
        assert_eq!(disagreement_error(&inputs, &agg), 5);
        let oracle = DenseOracle::from_clusterings(&inputs);
        assert!((expected_disagreement_error(&oracle, &agg) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn lower_bound_below_any_candidate() {
        let inputs = vec![
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 3]),
            c(&[0, 1, 0, 1, 2, 2]),
        ];
        let oracle = DenseOracle::from_clusterings(&inputs);
        let lb = disagreement_lower_bound(&oracle);
        for cand in [
            c(&[0, 1, 0, 1, 2, 2]),
            Clustering::singletons(6),
            Clustering::one_cluster(6),
        ] {
            assert!(lb <= expected_disagreement_error(&oracle, &cand) + 1e-9);
        }
    }
}
