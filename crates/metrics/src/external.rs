//! External validation against known class labels: classification error
//! `E_C`, purity, and confusion matrices (paper §5.2).

use aggclust_core::clustering::Clustering;

/// A clusters × classes contingency table (Table 1 of the paper is the
/// transpose of one of these for the Mushrooms dataset).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<u64>>,
    num_classes: usize,
}

impl ConfusionMatrix {
    /// `counts()[cluster][class]` — number of objects of `class` in
    /// `cluster`.
    pub fn counts(&self) -> &[Vec<u64>] {
        &self.counts
    }

    /// Number of clusters (rows).
    pub fn num_clusters(&self) -> usize {
        self.counts.len()
    }

    /// Number of classes (columns).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Size of each cluster.
    pub fn cluster_sizes(&self) -> Vec<u64> {
        self.counts.iter().map(|row| row.iter().sum()).collect()
    }

    /// Majority class count `m_i` of each cluster.
    pub fn majority_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|row| row.iter().copied().max().unwrap_or(0))
            .collect()
    }

    /// Render the matrix with row/column headers, clusters sorted by size
    /// (largest first) — the presentation style of the paper's Table 1.
    pub fn render(&self, class_names: &[&str]) -> String {
        assert_eq!(class_names.len(), self.num_classes);
        let mut order: Vec<usize> = (0..self.num_clusters()).collect();
        let sizes = self.cluster_sizes();
        order.sort_by_key(|&i| std::cmp::Reverse(sizes[i]));
        let mut out = String::new();
        out.push_str(&format!("{:<12}", ""));
        for (i, _) in order.iter().enumerate() {
            out.push_str(&format!("{:>8}", format!("c{}", i + 1)));
        }
        out.push('\n');
        for (class, name) in class_names.iter().enumerate() {
            out.push_str(&format!("{name:<12}"));
            for &cluster in &order {
                out.push_str(&format!("{:>8}", self.counts[cluster][class]));
            }
            out.push('\n');
        }
        out
    }
}

/// Build the clusters × classes confusion matrix.
///
/// # Panics
/// Panics if `clustering` and `class_labels` disagree on `n`.
pub fn confusion_matrix(clustering: &Clustering, class_labels: &[u32]) -> ConfusionMatrix {
    assert_eq!(
        clustering.len(),
        class_labels.len(),
        "clustering and class labels must cover the same objects"
    );
    let num_classes = class_labels
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    let mut counts = vec![vec![0u64; num_classes]; clustering.num_clusters()];
    for (v, &class) in class_labels.iter().enumerate() {
        counts[clustering.label(v) as usize][class as usize] += 1;
    }
    ConfusionMatrix {
        counts,
        num_classes,
    }
}

/// Classification error `E_C = Σ_i (s_i − m_i) / n` (paper §5.2): the
/// fraction of objects that are not in their cluster's majority class.
///
/// `E_C = 0` means all clusters are pure; more clusters trivially lower the
/// error (singletons are pure), which is why the paper reports `k` next to
/// it.
pub fn classification_error(clustering: &Clustering, class_labels: &[u32]) -> f64 {
    let cm = confusion_matrix(clustering, class_labels);
    let n: u64 = cm.cluster_sizes().iter().sum();
    if n == 0 {
        return 0.0;
    }
    let majority: u64 = cm.majority_counts().iter().sum();
    (n - majority) as f64 / n as f64
}

/// Purity `= 1 − E_C`: the fraction of objects in their cluster's majority
/// class.
pub fn purity(clustering: &Clustering, class_labels: &[u32]) -> f64 {
    1.0 - classification_error(clustering, class_labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    #[test]
    fn pure_clusters_have_zero_error() {
        let clustering = c(&[0, 0, 1, 1, 2]);
        let classes = [0, 0, 1, 1, 0];
        assert_eq!(classification_error(&clustering, &classes), 0.0);
        assert_eq!(purity(&clustering, &classes), 1.0);
    }

    #[test]
    fn singletons_are_always_pure() {
        let clustering = Clustering::singletons(6);
        let classes = [0, 1, 0, 1, 0, 1];
        assert_eq!(classification_error(&clustering, &classes), 0.0);
    }

    #[test]
    fn mixed_cluster_error() {
        // One cluster of 4 with classes [0,0,0,1] → 1 of 4 misclassified.
        let clustering = Clustering::one_cluster(4);
        let classes = [0, 0, 0, 1];
        assert!((classification_error(&clustering, &classes) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_counts() {
        let clustering = c(&[0, 0, 1, 1, 1]);
        let classes = [0, 1, 1, 1, 0];
        let cm = confusion_matrix(&clustering, &classes);
        assert_eq!(cm.num_clusters(), 2);
        assert_eq!(cm.num_classes(), 2);
        assert_eq!(cm.counts()[0], vec![1, 1]);
        assert_eq!(cm.counts()[1], vec![1, 2]);
        assert_eq!(cm.cluster_sizes(), vec![2, 3]);
        assert_eq!(cm.majority_counts(), vec![1, 2]);
    }

    #[test]
    fn render_is_sorted_by_cluster_size() {
        let clustering = c(&[0, 1, 1, 1]);
        let classes = [0, 0, 1, 1];
        let cm = confusion_matrix(&clustering, &classes);
        let s = cm.render(&["a", "b"]);
        // Largest cluster (size 3) must be the first column c1.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("c1") && lines[0].contains("c2"));
        assert!(lines[1].starts_with('a'));
    }

    #[test]
    #[should_panic(expected = "same objects")]
    fn length_mismatch_panics() {
        let _ = confusion_matrix(&c(&[0, 1]), &[0, 1, 2]);
    }
}
