//! Information-theoretic clustering comparison: entropy, mutual
//! information, normalized mutual information, and variation of
//! information.
//!
//! All quantities are in nats (natural log) internally; NMI is scale-free.

use aggclust_core::clustering::Clustering;
use std::collections::HashMap;

/// Shannon entropy (nats) of a clustering's label distribution.
pub fn entropy(c: &Clustering) -> f64 {
    let n = c.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    c.cluster_sizes()
        .iter()
        .filter(|&&s| s > 0)
        .map(|&s| {
            let p = s as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Mutual information (nats) between two clusterings of the same objects.
pub fn mutual_information(c1: &Clustering, c2: &Clustering) -> f64 {
    assert_eq!(
        c1.len(),
        c2.len(),
        "clusterings must cover the same objects"
    );
    let n = c1.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mut joint: HashMap<(u32, u32), u64> = HashMap::new();
    for v in 0..c1.len() {
        *joint.entry((c1.label(v), c2.label(v))).or_insert(0) += 1;
    }
    let s1 = c1.cluster_sizes();
    let s2 = c2.cluster_sizes();
    let mut mi = 0.0;
    for (&(a, b), &count) in &joint {
        let p_ab = count as f64 / n;
        let p_a = s1[a as usize] as f64 / n;
        let p_b = s2[b as usize] as f64 / n;
        mi += p_ab * (p_ab / (p_a * p_b)).ln();
    }
    mi.max(0.0)
}

/// Normalized mutual information `∈ [0, 1]` using the arithmetic-mean
/// normalization `2·I / (H₁ + H₂)`; `1` for identical partitions, `0` for
/// independent ones. Two trivial partitions (zero entropy) compare as `1`
/// when equal and `0` otherwise.
pub fn normalized_mutual_information(c1: &Clustering, c2: &Clustering) -> f64 {
    let h1 = entropy(c1);
    let h2 = entropy(c2);
    if h1 + h2 == 0.0 {
        return if c1 == c2 { 1.0 } else { 0.0 };
    }
    (2.0 * mutual_information(c1, c2) / (h1 + h2)).clamp(0.0, 1.0)
}

/// Variation of information `VI = H₁ + H₂ − 2·I` (nats) — a true metric on
/// the space of partitions.
pub fn variation_of_information(c1: &Clustering, c2: &Clustering) -> f64 {
    (entropy(c1) + entropy(c2) - 2.0 * mutual_information(c1, c2)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    #[test]
    fn entropy_of_uniform_partition() {
        // Four equal clusters of one → H = ln 4.
        let s = Clustering::singletons(4);
        assert!((entropy(&s) - 4f64.ln()).abs() < 1e-12);
        // One cluster → H = 0.
        assert_eq!(entropy(&Clustering::one_cluster(4)), 0.0);
    }

    #[test]
    fn mi_of_identical_is_entropy() {
        let a = c(&[0, 0, 1, 1, 2, 2]);
        assert!((mutual_information(&a, &a) - entropy(&a)).abs() < 1e-12);
    }

    #[test]
    fn nmi_identical_is_one_independent_is_low() {
        let a = c(&[0, 0, 1, 1]);
        assert!((normalized_mutual_information(&a, &a) - 1.0).abs() < 1e-12);
        // A perfectly "crossed" partition shares no information.
        let b = c(&[0, 1, 0, 1]);
        assert!(normalized_mutual_information(&a, &b) < 1e-9);
    }

    #[test]
    fn nmi_trivial_partitions() {
        let o = Clustering::one_cluster(4);
        assert_eq!(normalized_mutual_information(&o, &o), 1.0);
        let s = Clustering::singletons(1);
        assert_eq!(normalized_mutual_information(&s, &s), 1.0);
    }

    #[test]
    fn vi_is_zero_iff_equal_and_symmetric() {
        let a = c(&[0, 0, 1, 1, 2]);
        let b = c(&[0, 1, 1, 2, 2]);
        assert!(variation_of_information(&a, &a) < 1e-12);
        assert!(variation_of_information(&a, &b) > 0.0);
        assert!(
            (variation_of_information(&a, &b) - variation_of_information(&b, &a)).abs() < 1e-12
        );
    }

    #[test]
    fn vi_triangle_inequality_spot_check() {
        let xs = [
            c(&[0, 0, 1, 1, 2, 2]),
            c(&[0, 1, 0, 1, 2, 2]),
            c(&[0, 0, 0, 1, 1, 1]),
            Clustering::singletons(6),
            Clustering::one_cluster(6),
        ];
        for a in &xs {
            for b in &xs {
                for m in &xs {
                    assert!(
                        variation_of_information(a, b)
                            <= variation_of_information(a, m)
                                + variation_of_information(m, b)
                                + 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn empty_clusterings() {
        let e = c(&[]);
        assert_eq!(entropy(&e), 0.0);
        assert_eq!(mutual_information(&e, &e), 0.0);
        assert_eq!(normalized_mutual_information(&e, &e), 1.0);
    }
}
