//! Internal (label-free) validation of clusterings over vector data:
//! silhouette scores and the within/between sum-of-squares decomposition.
//!
//! These complement the external indices: the paper's Figures 3–5 start
//! from vector data, and a downstream user comparing the aggregate against
//! the inputs without ground truth needs exactly these.

use aggclust_core::clustering::Clustering;

#[inline]
fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Per-point silhouette values `s(v) = (b − a) / max(a, b)` where `a` is
/// the mean distance to the point's own cluster and `b` the smallest mean
/// distance to another cluster. Points in singleton clusters score 0 (the
/// standard convention).
///
/// `O(n²)` distance evaluations.
///
/// # Panics
/// Panics if `points` and `clustering` disagree on `n`.
pub fn silhouette_samples(points: &[Vec<f64>], clustering: &Clustering) -> Vec<f64> {
    assert_eq!(
        points.len(),
        clustering.len(),
        "points and clustering must cover the same objects"
    );
    let n = points.len();
    let k = clustering.num_clusters();
    let sizes = clustering.cluster_sizes();
    let mut out = vec![0.0f64; n];
    if k < 2 {
        return out;
    }
    let mut sums = vec![0.0f64; k];
    for v in 0..n {
        sums.iter_mut().for_each(|s| *s = 0.0);
        for u in 0..n {
            if u != v {
                sums[clustering.label(u) as usize] += euclidean(&points[v], &points[u]);
            }
        }
        let own = clustering.label(v) as usize;
        if sizes[own] <= 1 {
            out[v] = 0.0;
            continue;
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            out[v] = 0.0;
            continue;
        }
        let denom = a.max(b);
        out[v] = if denom > 0.0 { (b - a) / denom } else { 0.0 };
    }
    out
}

/// Mean silhouette over all points, in `[−1, 1]`; higher is better, 0 for
/// trivial clusterings (`k < 2`).
pub fn silhouette_score(points: &[Vec<f64>], clustering: &Clustering) -> f64 {
    let samples = silhouette_samples(points, clustering);
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// `(within, between)` sum-of-squares decomposition: `within` is the total
/// squared distance of points to their cluster centroids, `between` the
/// size-weighted squared distance of centroids to the global mean. Their
/// sum is the total sum of squares (checked in tests).
pub fn sum_of_squares(points: &[Vec<f64>], clustering: &Clustering) -> (f64, f64) {
    assert_eq!(points.len(), clustering.len());
    let n = points.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let dim = points[0].len();
    let k = clustering.num_clusters();
    let sizes = clustering.cluster_sizes();
    let mut centroids = vec![vec![0.0f64; dim]; k];
    let mut global = vec![0.0f64; dim];
    for (v, p) in points.iter().enumerate() {
        let c = clustering.label(v) as usize;
        for (d, &x) in p.iter().enumerate() {
            centroids[c][d] += x;
            global[d] += x;
        }
    }
    for (c, centroid) in centroids.iter_mut().enumerate() {
        for x in centroid.iter_mut() {
            *x /= sizes[c].max(1) as f64;
        }
    }
    for x in global.iter_mut() {
        *x /= n as f64;
    }
    let mut within = 0.0;
    for (v, p) in points.iter().enumerate() {
        let c = clustering.label(v) as usize;
        within += p
            .iter()
            .zip(&centroids[c])
            .map(|(x, m)| (x - m) * (x - m))
            .sum::<f64>();
    }
    let mut between = 0.0;
    for (c, centroid) in centroids.iter().enumerate() {
        between += sizes[c] as f64
            * centroid
                .iter()
                .zip(&global)
                .map(|(m, g)| (m - g) * (m - g))
                .sum::<f64>();
    }
    (within, between)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Clustering) {
        let mut pts = Vec::new();
        for i in 0..5 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
        }
        for i in 0..5 {
            pts.push(vec![10.0 + 0.01 * i as f64, 0.0]);
        }
        let c = Clustering::from_labels(vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1]);
        (pts, c)
    }

    #[test]
    fn well_separated_blobs_score_near_one() {
        let (pts, c) = two_blobs();
        let s = silhouette_score(&pts, &c);
        assert!(s > 0.99, "s = {s}");
    }

    #[test]
    fn wrong_assignment_scores_negative() {
        let (pts, _) = two_blobs();
        // Swap one point into the far cluster.
        let bad = Clustering::from_labels(vec![1, 0, 0, 0, 0, 1, 1, 1, 1, 1]);
        let samples = silhouette_samples(&pts, &bad);
        assert!(samples[0] < 0.0, "misplaced point must score negative");
    }

    #[test]
    fn trivial_clusterings_score_zero() {
        let (pts, _) = two_blobs();
        assert_eq!(silhouette_score(&pts, &Clustering::one_cluster(10)), 0.0);
        // All singletons: every point is in a singleton → 0 by convention.
        assert_eq!(silhouette_score(&pts, &Clustering::singletons(10)), 0.0);
    }

    #[test]
    fn sum_of_squares_decomposition_adds_up() {
        let (pts, c) = two_blobs();
        let (within, between) = sum_of_squares(&pts, &c);
        // Total sum of squares around the global mean.
        let n = pts.len() as f64;
        let gx = pts.iter().map(|p| p[0]).sum::<f64>() / n;
        let gy = pts.iter().map(|p| p[1]).sum::<f64>() / n;
        let total: f64 = pts
            .iter()
            .map(|p| (p[0] - gx).powi(2) + (p[1] - gy).powi(2))
            .sum();
        assert!((within + between - total).abs() < 1e-9);
        assert!(between > within, "separated blobs: between dominates");
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(
            sum_of_squares(&[], &Clustering::from_labels(vec![])),
            (0.0, 0.0)
        );
        let one = vec![vec![1.0, 2.0]];
        assert_eq!(silhouette_score(&one, &Clustering::one_cluster(1)), 0.0);
    }
}
