//! # aggclust-metrics
//!
//! Clustering quality measures used by the paper's evaluation (§5) plus the
//! standard external indices useful for sanity-checking reproductions:
//!
//! * [`external`] — classification error `E_C`, purity, and the confusion
//!   matrix of Tables 1–3,
//! * [`pair_counting`] — Rand index, adjusted Rand index, pairwise
//!   precision/recall/F,
//! * [`information`] — entropy, mutual information, NMI, variation of
//!   information,
//! * [`disagreement`] — the disagreement error `E_D` (the objective the
//!   aggregation algorithms optimize) and its expected variant for
//!   instances with missing values,
//! * [`stability`] — consensus diagnostics: agreement histograms and the
//!   per-node isolation/ambiguity scores behind the paper's outlier
//!   detection application,
//! * [`internal`] — label-free validation over vector data (silhouette,
//!   within/between sum of squares).
//!
//! ```
//! use aggclust_core::clustering::Clustering;
//! use aggclust_metrics::{classification_error, adjusted_rand_index};
//!
//! let found = Clustering::from_labels(vec![0, 0, 1, 1, 1]);
//! let classes = [0, 0, 1, 1, 0];
//! assert!((classification_error(&found, &classes) - 0.2).abs() < 1e-12);
//! let truth = Clustering::from_labels(classes.to_vec());
//! assert!(adjusted_rand_index(&found, &truth) > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod disagreement;
pub mod external;
pub mod information;
pub mod internal;
pub mod pair_counting;
pub mod stability;

pub use disagreement::{disagreement_error, expected_disagreement_error};
pub use external::{classification_error, confusion_matrix, purity, ConfusionMatrix};
pub use information::{normalized_mutual_information, variation_of_information};
pub use pair_counting::{adjusted_rand_index, rand_index};
