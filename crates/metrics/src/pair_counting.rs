//! Pair-counting indices: Rand, adjusted Rand, and pairwise
//! precision/recall/F-measure.
//!
//! These all derive from the same 2×2 pair table as the disagreement
//! distance `d_V`: of the `n(n−1)/2` object pairs, count those co-clustered
//! by both clusterings (`a`), by only the first (`b`), only the second
//! (`c`), and neither (`d`). Then `d_V = b + c` and the Rand index is
//! `(a + d) / (a + b + c + d)`.

use aggclust_core::clustering::Clustering;
use aggclust_core::distance::pairs_together_both;

/// The 2×2 pair-agreement table between two clusterings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairCounts {
    /// Pairs together in both clusterings.
    pub both: u64,
    /// Pairs together only in the first.
    pub first_only: u64,
    /// Pairs together only in the second.
    pub second_only: u64,
    /// Pairs separated in both.
    pub neither: u64,
}

/// Compute the pair-agreement table in `O(n + k₁k₂)`.
pub fn pair_counts(c1: &Clustering, c2: &Clustering) -> PairCounts {
    assert_eq!(
        c1.len(),
        c2.len(),
        "clusterings must cover the same objects"
    );
    let n = c1.len() as u64;
    let total = n * n.saturating_sub(1) / 2;
    let p1 = c1.pairs_together();
    let p2 = c2.pairs_together();
    let both = pairs_together_both(c1, c2);
    PairCounts {
        both,
        first_only: p1 - both,
        second_only: p2 - both,
        neither: total + both - p1 - p2,
    }
}

/// Rand index `∈ [0, 1]`: the fraction of pairs the two clusterings agree
/// on. Equals `1 − d_V / (n choose 2)`.
pub fn rand_index(c1: &Clustering, c2: &Clustering) -> f64 {
    let pc = pair_counts(c1, c2);
    let total = pc.both + pc.first_only + pc.second_only + pc.neither;
    if total == 0 {
        return 1.0;
    }
    (pc.both + pc.neither) as f64 / total as f64
}

/// Adjusted Rand index (Hubert & Arabie): the Rand index corrected for
/// chance, `1` for identical partitions, `≈ 0` for independent ones (can be
/// negative).
pub fn adjusted_rand_index(c1: &Clustering, c2: &Clustering) -> f64 {
    let pc = pair_counts(c1, c2);
    let total = (pc.both + pc.first_only + pc.second_only + pc.neither) as f64;
    if total == 0.0 {
        return 1.0;
    }
    let sum_rows = (pc.both + pc.first_only) as f64; // Σ (a_i choose 2)
    let sum_cols = (pc.both + pc.second_only) as f64; // Σ (b_j choose 2)
    let expected = sum_rows * sum_cols / total;
    let max = 0.5 * (sum_rows + sum_cols);
    if (max - expected).abs() < 1e-12 {
        // Both partitions are trivial (all-singletons or all-one): identical
        // trivial partitions get 1, otherwise define 0.
        return if c1 == c2 { 1.0 } else { 0.0 };
    }
    (pc.both as f64 - expected) / (max - expected)
}

/// Pairwise precision of `c1` against reference `c2`: of the pairs `c1`
/// puts together, the fraction the reference also puts together.
pub fn pair_precision(c1: &Clustering, reference: &Clustering) -> f64 {
    let pc = pair_counts(c1, reference);
    let predicted = pc.both + pc.first_only;
    if predicted == 0 {
        return 1.0;
    }
    pc.both as f64 / predicted as f64
}

/// Pairwise recall of `c1` against reference `c2`: of the pairs the
/// reference puts together, the fraction `c1` also puts together.
pub fn pair_recall(c1: &Clustering, reference: &Clustering) -> f64 {
    let pc = pair_counts(c1, reference);
    let actual = pc.both + pc.second_only;
    if actual == 0 {
        return 1.0;
    }
    pc.both as f64 / actual as f64
}

/// Pairwise F1 score against a reference clustering.
pub fn pair_f1(c1: &Clustering, reference: &Clustering) -> f64 {
    let p = pair_precision(c1, reference);
    let r = pair_recall(c1, reference);
    if p + r == 0.0 {
        return 0.0;
    }
    2.0 * p * r / (p + r)
}

/// Fowlkes–Mallows index: the geometric mean of pairwise precision and
/// recall, `√(P·R) ∈ [0, 1]`.
pub fn fowlkes_mallows(c1: &Clustering, c2: &Clustering) -> f64 {
    (pair_precision(c1, c2) * pair_recall(c1, c2)).sqrt()
}

/// Pair-level Jaccard index: `a / (a + b + c)` over the pair table —
/// co-clustered pairs shared, relative to pairs co-clustered by either.
/// Two all-singleton clusterings (no co-clustered pairs anywhere) compare
/// as 1.
pub fn pair_jaccard(c1: &Clustering, c2: &Clustering) -> f64 {
    let pc = pair_counts(c1, c2);
    let denom = pc.both + pc.first_only + pc.second_only;
    if denom == 0 {
        return 1.0;
    }
    pc.both as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggclust_core::distance::disagreement_distance;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    #[test]
    fn identical_partitions_score_one() {
        let a = c(&[0, 0, 1, 1, 2]);
        assert_eq!(rand_index(&a, &a), 1.0);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        assert_eq!(pair_f1(&a, &a), 1.0);
    }

    #[test]
    fn rand_index_complements_normalized_disagreement() {
        let a = c(&[0, 0, 1, 1, 2, 2]);
        let b = c(&[0, 1, 0, 1, 2, 2]);
        let n = 6u64;
        let total = (n * (n - 1) / 2) as f64;
        let expected = 1.0 - disagreement_distance(&a, &b) as f64 / total;
        assert!((rand_index(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn pair_counts_sum_to_total() {
        let a = c(&[0, 0, 1, 2, 2]);
        let b = c(&[0, 1, 1, 2, 0]);
        let pc = pair_counts(&a, &b);
        assert_eq!(pc.both + pc.first_only + pc.second_only + pc.neither, 10);
    }

    #[test]
    fn ari_zero_for_trivial_vs_nontrivial() {
        // All-one-cluster vs anything: sum_cols == total → degenerate.
        let ones = Clustering::one_cluster(4);
        let other = c(&[0, 0, 1, 1]);
        let ari = adjusted_rand_index(&ones, &other);
        assert!(ari.abs() < 1.0); // defined, not NaN
        assert!(!ari.is_nan());
    }

    #[test]
    fn ari_is_symmetric() {
        let a = c(&[0, 0, 1, 1, 2, 2, 0]);
        let b = c(&[0, 1, 1, 2, 2, 0, 0]);
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_asymmetry() {
        // Fine partition has perfect precision but poor recall vs coarse.
        let fine = c(&[0, 0, 1, 1]);
        let coarse = Clustering::one_cluster(4);
        assert_eq!(pair_precision(&fine, &coarse), 1.0);
        assert!(pair_recall(&fine, &coarse) < 1.0);
    }

    #[test]
    fn fowlkes_mallows_and_jaccard_bounds() {
        let a = c(&[0, 0, 1, 1, 2]);
        let b = c(&[0, 1, 1, 2, 2]);
        assert_eq!(fowlkes_mallows(&a, &a), 1.0);
        assert_eq!(pair_jaccard(&a, &a), 1.0);
        let fm = fowlkes_mallows(&a, &b);
        let pj = pair_jaccard(&a, &b);
        assert!((0.0..1.0).contains(&fm));
        assert!((0.0..1.0).contains(&pj));
        // Jaccard ≤ Fowlkes–Mallows always (J = a/(a+b+c) ≤ √(P·R)).
        assert!(pj <= fm + 1e-12);
        // Symmetry.
        assert!((fm - fowlkes_mallows(&b, &a)).abs() < 1e-12);
        assert!((pj - pair_jaccard(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn jaccard_singleton_convention() {
        let s = Clustering::singletons(4);
        assert_eq!(pair_jaccard(&s, &s), 1.0);
        assert_eq!(pair_jaccard(&s, &Clustering::one_cluster(4)), 0.0);
    }

    #[test]
    fn singletons_edge_cases() {
        let s = Clustering::singletons(4);
        let o = Clustering::one_cluster(4);
        assert_eq!(pair_precision(&s, &o), 1.0); // no predicted pairs
        assert_eq!(pair_recall(&o, &s), 1.0); // no actual pairs
        assert_eq!(rand_index(&s, &o), 0.0);
    }
}
