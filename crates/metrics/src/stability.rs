//! Consensus diagnostics over a correlation-clustering instance: how much
//! the input clusterings agree, and which objects look like outliers.
//!
//! The paper's outlier application (§2, "Detecting outliers") rests on two
//! per-node signals this module computes:
//!
//! * **isolation** — a node far from every other node (its nearest
//!   neighbor distance is high) pays less as a singleton than in any
//!   cluster ("a tuple with many uncommon values");
//! * **ambiguity** — a node whose distances hover around ½ has no
//!   consensus on where it belongs ("common values but no consensus to a
//!   common cluster" — the horror movie with Julia Roberts directed by
//!   Lars von Trier).
//!
//! [`agreement_histogram`] summarizes the instance globally: aggregation
//! works exactly when the `X_uv` mass is bimodal around 0 and 1.
//!
//! The per-node score vectors are independent full-row scans, so they run
//! in parallel via [`aggclust_core::parallel`]; each row accumulates in a
//! fixed order, keeping the output bit-identical at any thread count.

use aggclust_core::instance::DistanceOracle;
use aggclust_core::parallel;

/// Histogram of the pairwise distances `X_uv` over `bins` equal-width
/// buckets spanning `[0, 1]` (the last bucket is closed).
///
/// # Panics
/// Panics if `bins == 0`.
pub fn agreement_histogram<O: DistanceOracle + Sync + ?Sized>(oracle: &O, bins: usize) -> Vec<u64> {
    assert!(bins > 0, "need at least one bin");
    let n = oracle.len();
    let mut hist = vec![0u64; bins];
    for u in 0..n {
        for v in (u + 1)..n {
            let x = oracle.dist(u, v).clamp(0.0, 1.0);
            let b = ((x * bins as f64) as usize).min(bins - 1);
            hist[b] += 1;
        }
    }
    hist
}

/// Fraction of pairs whose distance lies in the ambiguous middle band
/// `(lo, hi)` — e.g. `(0.25, 0.75)`. Low values mean strong consensus.
pub fn ambiguous_pair_fraction<O: DistanceOracle + Sync + ?Sized>(
    oracle: &O,
    lo: f64,
    hi: f64,
) -> f64 {
    let n = oracle.len();
    if n < 2 {
        return 0.0;
    }
    let mut ambiguous = 0u64;
    let mut total = 0u64;
    for u in 0..n {
        for v in (u + 1)..n {
            let x = oracle.dist(u, v);
            if x > lo && x < hi {
                ambiguous += 1;
            }
            total += 1;
        }
    }
    ambiguous as f64 / total as f64
}

/// Per-node isolation score: the distance to the nearest other node.
/// Close to 1 ⇒ every clustering separates this node from everyone ⇒ it
/// will (and should) end up a singleton.
pub fn isolation_scores<O: DistanceOracle + Sync + ?Sized>(oracle: &O) -> Vec<f64> {
    let n = oracle.len();
    let mut scores = vec![0.0f64; n];
    parallel::fill_slice(&mut scores, |u| {
        let nearest = (0..n)
            .filter(|&v| v != u)
            .map(|v| oracle.dist(u, v))
            .fold(f64::INFINITY, f64::min);
        if nearest.is_finite() {
            nearest.min(1.0)
        } else {
            0.0 // a universe of one node is not isolated from anything
        }
    });
    scores
}

/// Per-node ambiguity score: the mean of `min(X_uv, 1 − X_uv)` over the
/// other nodes — the per-pair unavoidable cost charged to `u`. Close to ½
/// ⇒ the inputs have no consensus about `u` at all.
pub fn ambiguity_scores<O: DistanceOracle + Sync + ?Sized>(oracle: &O) -> Vec<f64> {
    let n = oracle.len();
    let mut scores = vec![0.0f64; n];
    if n < 2 {
        return scores;
    }
    parallel::fill_slice(&mut scores, |u| {
        let total: f64 = (0..n)
            .filter(|&v| v != u)
            .map(|v| {
                let x = oracle.dist(u, v);
                x.min(1.0 - x)
            })
            .sum();
        total / (n - 1) as f64
    });
    scores
}

/// Indices of the `top` most outlier-like nodes by combined score
/// `isolation + ambiguity`, most suspicious first.
pub fn top_outliers<O: DistanceOracle + Sync + ?Sized>(oracle: &O, top: usize) -> Vec<usize> {
    let iso = isolation_scores(oracle);
    let amb = ambiguity_scores(oracle);
    let mut order: Vec<usize> = (0..oracle.len()).collect();
    order.sort_by(|&a, &b| {
        (iso[b] + amb[b])
            .partial_cmp(&(iso[a] + amb[a]))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.truncate(top);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggclust_core::clustering::Clustering;
    use aggclust_core::instance::DenseOracle;

    fn c(labels: &[u32]) -> Clustering {
        Clustering::from_labels(labels.to_vec())
    }

    /// Three concordant clusterings plus one node (index 4) placed
    /// differently by each — the classic no-consensus outlier.
    fn outlier_instance() -> DenseOracle {
        DenseOracle::from_clusterings(&[
            c(&[0, 0, 1, 1, 0]),
            c(&[0, 0, 1, 1, 1]),
            c(&[0, 0, 1, 1, 2]),
        ])
    }

    #[test]
    fn histogram_sums_to_pair_count() {
        let oracle = outlier_instance();
        let hist = agreement_histogram(&oracle, 4);
        assert_eq!(hist.iter().sum::<u64>(), 10); // 5 choose 2
    }

    #[test]
    fn bimodal_instance_has_low_ambiguity() {
        let consensus = c(&[0, 0, 1, 1]);
        let oracle =
            DenseOracle::from_clusterings(&[consensus.clone(), consensus.clone(), consensus]);
        assert_eq!(ambiguous_pair_fraction(&oracle, 0.25, 0.75), 0.0);
        let hist = agreement_histogram(&oracle, 2);
        assert_eq!(hist.iter().sum::<u64>(), 6);
    }

    #[test]
    fn no_consensus_node_is_the_top_outlier() {
        let oracle = outlier_instance();
        let amb = ambiguity_scores(&oracle);
        // Node 4's distances to 0,1 are 2/3 and to 2,3 are ... compute:
        // min(x, 1-x) ≥ 1/3 for all its pairs, while core nodes pair at 0.
        let core_max = amb[..4].iter().cloned().fold(0.0, f64::max);
        assert!(amb[4] > core_max, "amb = {amb:?}");
        assert_eq!(top_outliers(&oracle, 1), vec![4]);
    }

    #[test]
    fn isolated_node_scores_one() {
        // Node 3 at distance 1 from everyone.
        let inputs = [c(&[0, 0, 0, 1]), c(&[0, 0, 0, 1])];
        let oracle = DenseOracle::from_clusterings(&inputs);
        let iso = isolation_scores(&oracle);
        assert_eq!(iso[3], 1.0);
        assert_eq!(iso[0], 0.0);
        assert_eq!(top_outliers(&oracle, 1), vec![3]);
    }

    #[test]
    fn tiny_instances() {
        let oracle = DenseOracle::from_fn(1, |_, _| 0.0);
        assert_eq!(isolation_scores(&oracle), vec![0.0]);
        assert_eq!(ambiguity_scores(&oracle), vec![0.0]);
        assert!(top_outliers(&oracle, 5).len() == 1);
        let empty = DenseOracle::from_fn(0, |_, _| 0.0);
        assert!(agreement_histogram(&empty, 3).iter().all(|&h| h == 0));
    }
}
