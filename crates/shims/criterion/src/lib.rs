//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate implements the subset the workspace's
//! benches use — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros — measuring
//! wall-clock time with `std::time::Instant`.
//!
//! Reported statistics are `[min median max]` over the collected samples,
//! echoing criterion's `[low estimate high]` line format. If the
//! `CRITERION_SHIM_JSON` environment variable names a file, one JSON record
//! per benchmark is appended to it (used to regenerate the committed
//! `BENCH_*.json` baselines).

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: a function name plus an
/// optional parameter (e.g. the input size).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`: one warm-up call, then `sample_size` timed
    /// samples. Each sample batches enough iterations to be measurable
    /// (~10 ms) unless a single iteration already exceeds that.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed();

        let target = Duration::from_millis(10);
        let iters = if once >= target || once.is_zero() {
            1
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos() as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn report(id: &str, samples: &[Duration]) {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted.first().copied().unwrap_or_default();
    let max = sorted.last().copied().unwrap_or_default();
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
    println!(
        "{id:<40} time: [{} {} {}]",
        format_duration(min),
        format_duration(median),
        format_duration(max)
    );
    if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"id\":\"{id}\",\"min_ns\":{},\"median_ns\":{},\"max_ns\":{},\"samples\":{}}}",
                min.as_nanos(),
                median.as_nanos(),
                max.as_nanos(),
                sorted.len()
            );
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's default is 100;
    /// the shim defaults to 10 to keep `cargo bench` fast on large inputs).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim sizes samples automatically.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a routine with no parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b.samples);
        self
    }

    /// Benchmark a routine against one input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b.samples);
        self
    }

    /// Finish the group (prints nothing; exists for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nBenchmarking group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a standalone routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }

    /// Accepted for API compatibility with `criterion_main!`'s expansion.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups, mirroring criterion's macro.
/// Harness arguments passed by `cargo bench` (e.g. `--bench`) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut observed = 0;
        group.bench_with_input(BenchmarkId::new("noop", 1), &1u32, |b, &x| {
            b.iter(|| black_box(x + 1));
            observed = b.samples.len();
        });
        group.finish();
        assert_eq!(observed, 5);
    }

    #[test]
    fn duration_formatting() {
        assert!(format_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(10)).ends_with('s'));
    }
}
