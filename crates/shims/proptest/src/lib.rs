//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate re-implements the subset the workspace's
//! property tests use — the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, [`Just`],
//! [`any`], `collection::vec`, `option::weighted`, and the
//! `prop_assert*` macros — with two deliberate simplifications:
//!
//! * **No shrinking.** A failing case panics with the generated values in
//!   the assertion message instead of being minimized.
//! * **Deterministic seeding.** Each test derives its RNG stream from the
//!   test's module path and name plus the case index, so failures are
//!   reproducible run-to-run without a persisted regression file.

#![warn(missing_docs)]
#![warn(clippy::all)]

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator driving value generation (xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Build the RNG for one test case from a per-test seed and the case
    /// index.
    pub fn new(test_seed: u64, case: u64) -> Self {
        let mut sm = test_seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0; 4] {
            s = [1, 2, 3, 4];
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased integer in `[0, range)`.
    pub fn below(&mut self, range: u64) -> u64 {
        debug_assert!(range > 0);
        let mut m = (self.next_u64() as u128) * (range as u128);
        let mut lo = m as u64;
        if lo < range {
            let threshold = range.wrapping_neg() % range;
            while lo < threshold {
                m = (self.next_u64() as u128) * (range as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// FNV-1a hash of a test identifier, used as the per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A generator of random values (the shim has no shrinking, so a strategy
/// is just a value generator).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a second strategy depending on it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values spanning several orders of magnitude.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mag = (rng.below(61) as i32 - 30) as f64;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.next_f64() * 10f64.powf(mag)
    }
}

/// Strategy producing any value of `T` (see [`Arbitrary`]).
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec`]: a fixed `usize`, a
    /// `Range<usize>`, or a `RangeInclusive<usize>`.
    pub trait IntoSizeRange {
        /// Draw a length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option`s that are `Some` with a fixed probability.
    pub struct Weighted<S> {
        prob_some: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_f64() < self.prob_some {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `prop::option::weighted(prob_some, element)`.
    pub fn weighted<S: Strategy>(prob_some: f64, inner: S) -> Weighted<S> {
        assert!(
            (0.0..=1.0).contains(&prob_some),
            "probability {prob_some} out of [0, 1]"
        );
        Weighted { prob_some, inner }
    }
}

/// The commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a [`proptest!`] test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a [`proptest!`] test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a [`proptest!`] test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(pattern in strategy) { body }` item
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(seed, case as u64);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1, 0);
        let s = (2usize..20).prop_flat_map(|n| prop::collection::vec(0u32..5, n));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..20).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn weighted_option_hits_both_arms() {
        let mut rng = crate::TestRng::new(2, 0);
        let s = prop::option::weighted(0.5, 0u16..3);
        let some = (0..200).filter(|_| s.generate(&mut rng).is_some()).count();
        assert!((50..150).contains(&some));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_tuples((a, b) in (0u32..10, Just(7u32))) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 7);
        }

        #[test]
        fn macro_supports_flat_map(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(any::<u64>(), n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }
}
