//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access and no
//! vendored registry, so the real `rand` cannot be fetched. This crate
//! implements the *exact API subset the workspace uses* — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::index::sample` — on top of a xoshiro256++ generator seeded through
//! SplitMix64.
//!
//! Everything is deterministic given the seed, which is all the workspace
//! relies on (every call site seeds explicitly via `seed_from_u64`). The
//! stream is *not* byte-compatible with the real `rand` 0.8 `StdRng`
//! (ChaCha12); no test or experiment in this repository depends on the
//! concrete stream, only on seeded reproducibility.

#![warn(missing_docs)]
#![warn(clippy::all)]

/// Low-level source of randomness: a stream of `u64`/`u32` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for the provided generators).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded to a full seed via SplitMix64 — the
    /// only constructor this workspace uses.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&word[..len]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used only to expand seeds.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Values that can be drawn "from the standard distribution"
/// (`Rng::gen::<T>()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Unbiased integer in `[0, range)` via Lemire's multiply-and-reject.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let mut m = (rng.next_u64() as u128) * (range as u128);
    let mut lo = m as u64;
    if lo < range {
        let threshold = range.wrapping_neg() % range;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (range as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // Guard against rounding up to the exclusive endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw from the standard distribution of `T` (uniform bits; `[0, 1)`
    /// for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Not stream-compatible with `rand 0.8`'s ChaCha12-based `StdRng`; see
    /// the crate docs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing a generator
        /// mid-stream. Restore it with [`StdRng::from_state`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot so it
        /// continues the exact same stream. An all-zero state (a xoshiro
        /// fixed point, never produced by a live generator) is nudged the
        /// same way as [`SeedableRng::from_seed`].
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng {
                    s: [0x9e37_79b9_7f4a_7c15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias for [`StdRng`] — this shim has a single generator.
    pub type SmallRng = StdRng;
}

/// Sequence-related sampling.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::{Rng, RngCore};
        use std::collections::HashMap;

        /// The result of [`sample`]: `amount` distinct indices in
        /// `[0, length)`.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// `true` if no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterate over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices uniformly from `[0, length)`
        /// via a sparse partial Fisher–Yates shuffle (`O(amount)` memory).
        ///
        /// # Panics
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            let mut swaps: HashMap<usize, usize> = HashMap::new();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                let vi = swaps.get(&i).copied().unwrap_or(i);
                let vj = swaps.get(&j).copied().unwrap_or(j);
                out.push(vj);
                swaps.insert(j, vi);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 10);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10u32);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0..=5usize);
            assert!(w <= 5);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn sample_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let picks = super::seq::index::sample(&mut rng, 100, 30).into_vec();
        assert_eq!(picks.len(), 30);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "indices must be distinct");
        assert!(picks.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_full_population() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut picks = super::seq::index::sample(&mut rng, 10, 10).into_vec();
        picks.sort_unstable();
        assert_eq!(picks, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1700..2300).contains(&hits), "hits = {hits}");
    }
}
