//! Integration-test crate: shared helpers for cross-crate tests.
//!
//! The actual tests live in `tests/` at the workspace root is not possible
//! with a virtual workspace, so they live in this crate's `tests/` directory.

use aggclust_core::clustering::Clustering;

/// Build a clustering from a label slice (convenience for tests).
pub fn clustering(labels: &[u32]) -> Clustering {
    Clustering::from_labels(labels.to_vec())
}

/// Deterministically flip `flips` bytes of `text` (fault-injection helper).
///
/// Positions and replacement bytes are derived from `seed` with a
/// splitmix64 stream, so corrupted inputs are reproducible run-to-run.
pub fn corrupt_bytes(text: &str, flips: usize, seed: u64) -> Vec<u8> {
    let mut bytes = text.as_bytes().to_vec();
    if bytes.is_empty() {
        return bytes;
    }
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for _ in 0..flips {
        let pos = (next() as usize) % bytes.len();
        bytes[pos] = (next() & 0xff) as u8;
    }
    bytes
}

/// Truncate `text` to its first `fraction` (in `[0, 1]`) of bytes, snapped
/// back to a UTF-8 character boundary (fault-injection helper).
pub fn truncate_text(text: &str, fraction: f64) -> &str {
    let cut = (text.len() as f64 * fraction.clamp(0.0, 1.0)) as usize;
    let mut cut = cut.min(text.len());
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    &text[..cut]
}

/// `m` clusterings of `n` objects constructed to pairwise disagree as much
/// as possible: clustering `i` groups objects by `(v + i) / ceil(n / k)`
/// with a different cluster count `k` per input, so no consensus is clean.
pub fn adversarial_disagreeing(n: usize, m: usize) -> Vec<Clustering> {
    (0..m)
        .map(|i| {
            let k = (i % n.max(1)) + 2;
            let labels = (0..n).map(|v| ((v * k + i) % n.max(1)) as u32).collect();
            Clustering::from_labels(labels)
        })
        .collect()
}
