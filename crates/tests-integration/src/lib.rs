//! Integration-test crate: shared helpers for cross-crate tests.
//!
//! The actual tests live in `tests/` at the workspace root is not possible
//! with a virtual workspace, so they live in this crate's `tests/` directory.

use aggclust_core::clustering::Clustering;

/// Build a clustering from a label slice (convenience for tests).
pub fn clustering(labels: &[u32]) -> Clustering {
    Clustering::from_labels(labels.to_vec())
}
