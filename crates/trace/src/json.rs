//! A minimal hand-rolled JSON parser — just enough for the JSONL trace
//! records and `aggclust-run-report-v1` documents the main binary emits.
//!
//! Zero dependencies on purpose: the analysis tool must keep working even
//! when the workspace it analyzes does not build. Numbers are kept in both
//! `f64` and (when exact) `u64` form so nanosecond totals above 2^53 do not
//! silently lose precision.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; `u64` form preserved when the literal was a whole
    /// non-negative integer in range.
    Num(f64, Option<u64>),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is irrelevant to every consumer here, so
    /// a sorted map keeps lookups simple and output stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value under `key`, when this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a `u64`, when it is a whole non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(f, exact) => exact.or_else(|| {
                if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 {
                    Some(*f as u64)
                } else {
                    None
                }
            }),
            _ => None,
        }
    }

    /// This value as an `f64`, when it is a number.
    #[cfg_attr(not(test), allow(dead_code))] // part of the Json surface; exercised by tests
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(f, _) => Some(*f),
            _ => None,
        }
    }

    /// This value's elements, when it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// This value's entries, when it is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a one-line description.
#[derive(Debug)]
pub struct JsonError {
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

/// Parse a complete JSON document; trailing whitespace is allowed, any
/// other trailing content is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text:?}")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: the traces we parse only
                            // ever contain them via user-supplied paths;
                            // decode them properly anyway.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).map_err(|_| {
                        JsonError {
                            offset: start,
                            message: "invalid UTF-8".to_string(),
                        }
                    })?);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok());
        match hex {
            Some(v) => {
                self.pos = end;
                Ok(v)
            }
            None => Err(self.err("invalid \\u escape digits")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let integral_end = self.pos;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
            offset: start,
            message: "invalid UTF-8 in number".to_string(),
        })?;
        let value: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number {text:?}"),
        })?;
        // Exact u64 form: a plain non-negative integer literal in range.
        let exact = if integral_end == self.pos {
            std::str::from_utf8(&self.bytes[start..integral_end])
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
        } else {
            None
        };
        Ok(Json::Num(value, exact))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_trace_record_shapes() {
        let line = r#"{"type":"span_end","ts_ns":1234,"tid":2,"span":"balls","id":7,"elapsed_ns":18446744073709551615,"fields":{"n":6,"alpha":0.4,"ok":true,"note":"a\"b"}}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("span_end"));
        assert_eq!(v.get("ts_ns").and_then(Json::as_u64), Some(1234));
        assert_eq!(
            v.get("elapsed_ns").and_then(Json::as_u64),
            Some(u64::MAX),
            "u64 range must not be squeezed through f64"
        );
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("alpha").and_then(Json::as_f64), Some(0.4));
        assert_eq!(fields.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(fields.get("note").and_then(Json::as_str), Some("a\"b"));
    }

    #[test]
    fn parses_nested_arrays_and_negatives() {
        let v = parse(r#"{"hist":[0,1.5,-2,1e3],"none":null}"#).unwrap();
        let hist = v.get("hist").and_then(Json::as_arr).unwrap();
        assert_eq!(hist.len(), 4);
        assert_eq!(hist[2].as_f64(), Some(-2.0));
        assert_eq!(hist[3].as_f64(), Some(1000.0));
        assert_eq!(v.get("none"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_passthrough_and_escapes() {
        let v = parse(r#""aé😀b""#).unwrap();
        assert_eq!(v.as_str(), Some("aé😀b"));
        let v = parse(r#""a\u00e9 \ud83d\ude00 b\n""#).unwrap();
        assert_eq!(v.as_str(), Some("aé 😀 b\n"));
    }
}
