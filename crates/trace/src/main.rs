//! `aggclust-trace` — make an aggclust run's time explainable.
//!
//! ```text
//! aggclust-trace tree --trace run.jsonl          # span tree, self/total
//! aggclust-trace fold --trace run.jsonl          # flamegraph folded stacks
//! aggclust-trace report --report run.json        # timings/faults summary
//! aggclust-trace diff --before a.json --after b.json [--fail-on-regression]
//! ```
//!
//! Inputs are the main binary's `--trace-out` JSONL stream and
//! `--metrics-out` run reports. The tool is dependency-free (including on
//! the rest of the workspace) so it keeps working on traces from any build.

mod json;
mod report;
mod spans;

use report::{DiffOptions, RunReport};
use std::process::ExitCode;

const HELP: &str = "\
aggclust-trace — trace analysis and perf-regression diffs for aggclust runs

USAGE:
    aggclust-trace <command> [options]

COMMANDS:
    tree      Aggregated span tree with per-path count, total and self time
    fold      Flamegraph-compatible folded stacks ('path;to;span self_ns')
    report    Summarize one run report: timings table, counters, faults
    diff      Compare two run reports under a perf-gate policy
    help      Show this message

TREE / FOLD OPTIONS:
    --trace PATH          JSONL trace written by 'aggclust ... --trace-out'

REPORT OPTIONS:
    --report PATH         run report written by 'aggclust ... --metrics-out'

DIFF OPTIONS:
    --before PATH         baseline run report
    --after PATH          current run report
    --counter-tolerance-pct P
                          allowed counter drift, percent (default 0: exact —
                          counters are deterministic for a pinned workload)
    --gate-counters A,B   gate only these counters (default: all shared)
    --share-tolerance-pts P
                          allowed growth of a span's self-time share, in
                          percentage points (default 15; shares transfer
                          across machines, absolute times do not)
    --time-tolerance-pct P
                          also gate absolute total_ns growth over P percent
                          (off by default; same-machine comparisons only)
    --min-ns N            ignore spans with self time below N ns on both
                          sides (default 1000000)
    --fail-on-regression  exit 1 when any gated quantity is out of tolerance

EXIT CODES:
    0   success / gate passed
    1   --fail-on-regression found regressions
    2   usage error
    3   I/O or parse error
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = argv.first().map(String::as_str).unwrap_or("help");
    let args = Args::parse(&argv[argv.len().min(1)..]);
    let outcome = match command {
        "tree" => cmd_tree(&args, false),
        "fold" => cmd_tree(&args, true),
        "report" => cmd_report(&args),
        "diff" => cmd_diff(&args),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(TraceError::Usage(format!(
            "unknown command {other:?}; try `aggclust-trace help`"
        ))),
    };
    match outcome {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {}", e.message()); // lint:allow-eprintln
            ExitCode::from(e.exit_code())
        }
    }
}

enum TraceError {
    Usage(String),
    Io(String),
}

impl TraceError {
    fn exit_code(&self) -> u8 {
        match self {
            TraceError::Usage(_) => 2,
            TraceError::Io(_) => 3,
        }
    }

    fn message(&self) -> &str {
        match self {
            TraceError::Usage(m) | TraceError::Io(m) => m,
        }
    }
}

/// Minimal `--flag value` / `--flag` argument store.
struct Args {
    pairs: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut pairs = Vec::new();
        let mut iter = argv.iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().cloned(),
                    _ => None,
                };
                pairs.push((name.to_string(), value));
            }
        }
        Args { pairs }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn flag(&self, name: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == name)
    }

    fn get_f64(&self, name: &str, default: f64) -> Result<f64, TraceError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| TraceError::Usage(format!("--{name} needs a number, got {raw:?}"))),
        }
    }

    fn get_u64(&self, name: &str, default: u64) -> Result<u64, TraceError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| TraceError::Usage(format!("--{name} needs an integer, got {raw:?}"))),
        }
    }

    fn require(&self, name: &str) -> Result<&str, TraceError> {
        self.get(name)
            .ok_or_else(|| TraceError::Usage(format!("--{name} PATH is required")))
    }
}

fn read(path: &str) -> Result<String, TraceError> {
    std::fs::read_to_string(path).map_err(|e| TraceError::Io(format!("reading {path}: {e}")))
}

fn load_report(path: &str) -> Result<RunReport, TraceError> {
    RunReport::parse(&read(path)?).map_err(|e| TraceError::Io(format!("parsing {path}: {e}")))
}

/// Write `text` to stdout, treating a broken pipe (`... | head`) as a
/// normal end of output rather than an error.
fn emit(text: &str) -> Result<(), TraceError> {
    use std::io::Write;
    match std::io::stdout().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        Err(e) => Err(TraceError::Io(format!("writing stdout: {e}"))),
    }
}

fn cmd_tree(args: &Args, folded: bool) -> Result<ExitCode, TraceError> {
    let path = args.require("trace")?;
    let stats = spans::analyze(&read(path)?);
    let mut out = String::new();
    if folded {
        out.push_str(&spans::render_folded(&stats));
    } else {
        out.push_str(&spans::render_tree(&stats));
        let mut notes = Vec::new();
        if stats.malformed_lines > 0 {
            notes.push(format!("{} malformed lines", stats.malformed_lines));
        }
        if stats.unmatched_ends > 0 {
            notes.push(format!("{} unmatched span ends", stats.unmatched_ends));
        }
        if stats.unclosed_spans > 0 {
            notes.push(format!("{} spans never closed", stats.unclosed_spans));
        }
        out.push_str(&format!(
            "{} records, {} events{}\n",
            stats.records,
            stats.events,
            if notes.is_empty() {
                String::new()
            } else {
                format!(" ({})", notes.join(", "))
            }
        ));
    }
    emit(&out)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_report(args: &Args) -> Result<ExitCode, TraceError> {
    let report = load_report(args.require("report")?)?;
    let denom = report.total_self_ns().max(1);
    let mut rows: Vec<(&String, &report::Timing)> = report.timings.iter().collect();
    rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
    let mut out = String::from("timings (by self time):\n");
    for (name, t) in rows {
        out.push_str(&format!(
            "  {name:<24} count {:>8}  total {:>12}  self {:>12}  max {:>12}  ({:>5.1}% self)\n",
            t.count,
            spans::human_ns(t.total_ns),
            spans::human_ns(t.self_ns),
            spans::human_ns(t.max_ns),
            100.0 * t.self_ns as f64 / denom as f64,
        ));
    }
    out.push_str("\ncounters (nonzero):\n");
    for (name, value) in report.counters.iter().filter(|(_, v)| **v > 0) {
        out.push_str(&format!("  {name:<32} {value}\n"));
    }
    if report.faults.is_empty() {
        out.push_str("\nfaults: none\n");
    } else {
        out.push_str("\nfaults injected:\n");
        for fault in &report.faults {
            out.push_str(&format!("  {fault}\n"));
        }
    }
    emit(&out)?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &Args) -> Result<ExitCode, TraceError> {
    let before = load_report(args.require("before")?)?;
    let after = load_report(args.require("after")?)?;
    let opts = DiffOptions {
        counter_tolerance_pct: args.get_f64("counter-tolerance-pct", 0.0)?,
        share_tolerance_pts: args.get_f64("share-tolerance-pts", 15.0)?,
        time_tolerance_pct: match args.get("time-tolerance-pct") {
            Some(_) => Some(args.get_f64("time-tolerance-pct", 0.0)?),
            None => None,
        },
        min_ns: args.get_u64("min-ns", 1_000_000)?,
        gate_counters: args
            .get("gate-counters")
            .map(|list| list.split(',').map(str::to_string).collect()),
    };
    let result = report::diff(&before, &after, &opts);
    let mut out = String::new();
    if result.lines.is_empty() {
        out.push_str("no differences\n");
    }
    for line in &result.lines {
        out.push_str(line);
        out.push('\n');
    }
    if result.regressions.is_empty() {
        out.push_str("gate: PASS\n");
        emit(&out)?;
        Ok(ExitCode::SUCCESS)
    } else {
        for regression in &result.regressions {
            out.push_str(&format!("REGRESSION: {regression}\n"));
        }
        out.push_str(&format!(
            "gate: FAIL ({} regressions)\n",
            result.regressions.len()
        ));
        emit(&out)?;
        if args.flag("fail-on-regression") {
            Ok(ExitCode::from(1))
        } else {
            Ok(ExitCode::SUCCESS)
        }
    }
}
