//! `aggclust-run-report-v1` ingestion and the regression diff.
//!
//! A run report is one JSON object:
//! `{"schema":"aggclust-run-report-v1","host":{...},"timings":{...},
//!   "faults":[...],"metrics":{...}}` — counters are plain numbers,
//! histograms arrays, timings per-span `{count,total_ns,self_ns,max_ns,
//! ns_hist}` objects.
//!
//! The diff compares two reports under a perf-gate policy:
//!
//! * **Counters are deterministic** for a pinned workload (same input,
//!   seed, thread count), so gated counters are compared *exactly* by
//!   default — any drift in either direction means the algorithm did
//!   different work, which is precisely what a perf gate wants to catch
//!   before wall-clock noise can hide it.
//! * **Timings are machine-dependent**, so they are gated on *self-time
//!   shares* (a span's fraction of total self time), which transfer
//!   across hosts, with a generous percentage-point tolerance; small
//!   spans below `--min-ns` are never gated (pure noise).

use crate::json::{self, Json};
use std::collections::BTreeMap;

/// Per-span timing aggregate from a report's `timings` block.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Timing {
    /// Number of times the span closed.
    pub count: u64,
    /// Summed wall-clock inside the span.
    pub total_ns: u64,
    /// Summed wall-clock minus same-thread child spans.
    pub self_ns: u64,
    /// Longest single occurrence.
    pub max_ns: u64,
}

/// A parsed run report.
#[derive(Debug)]
pub struct RunReport {
    /// Scalar counters and gauges from the `metrics` block.
    pub counters: BTreeMap<String, u64>,
    /// Per-span timing aggregates from the `timings` block.
    pub timings: BTreeMap<String, Timing>,
    /// Armed-failpoint injections recorded during the run.
    pub faults: Vec<String>,
}

impl RunReport {
    /// Parse a report from its JSON text.
    pub fn parse(text: &str) -> Result<RunReport, String> {
        let doc = json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some("aggclust-run-report-v1") => {}
            Some(other) => return Err(format!("unsupported schema {other:?}")),
            None => return Err("missing \"schema\" field".to_string()),
        }
        let mut counters = BTreeMap::new();
        if let Some(metrics) = doc.get("metrics").and_then(Json::as_obj) {
            for (key, value) in metrics {
                // Histograms (arrays) are distribution data, not gate
                // material; scalars are.
                if let Some(v) = value.as_u64() {
                    counters.insert(key.clone(), v);
                }
            }
        }
        let mut timings = BTreeMap::new();
        if let Some(block) = doc.get("timings").and_then(Json::as_obj) {
            for (name, span) in block {
                let field = |k: &str| span.get(k).and_then(Json::as_u64).unwrap_or(0);
                timings.insert(
                    name.clone(),
                    Timing {
                        count: field("count"),
                        total_ns: field("total_ns"),
                        self_ns: field("self_ns"),
                        max_ns: field("max_ns"),
                    },
                );
            }
        }
        let faults = doc
            .get("faults")
            .and_then(Json::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|f| f.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        Ok(RunReport {
            counters,
            timings,
            faults,
        })
    }

    /// Sum of all spans' self time — the denominator for timing shares.
    pub fn total_self_ns(&self) -> u64 {
        self.timings
            .values()
            .fold(0u64, |acc, t| acc.saturating_add(t.self_ns))
    }
}

/// Tolerances for [`diff`].
#[derive(Clone, Debug)]
pub struct DiffOptions {
    /// Allowed relative drift for gated counters, in percent (0 = exact).
    pub counter_tolerance_pct: f64,
    /// Allowed change of a span's self-time *share*, in percentage points.
    pub share_tolerance_pts: f64,
    /// Optional absolute wall-clock gate: fail when a span's `total_ns`
    /// grows by more than this percentage. Off by default — absolute time
    /// only compares within one machine.
    pub time_tolerance_pct: Option<f64>,
    /// Spans whose baseline self time is below this are never gated.
    pub min_ns: u64,
    /// Gate only these counters (`None` = every shared counter).
    pub gate_counters: Option<Vec<String>>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            counter_tolerance_pct: 0.0,
            share_tolerance_pts: 15.0,
            time_tolerance_pct: None,
            min_ns: 1_000_000,
            gate_counters: None,
        }
    }
}

/// The outcome of comparing two reports.
#[derive(Debug, Default)]
pub struct DiffResult {
    /// Human-readable comparison lines (all compared keys, changed first).
    pub lines: Vec<String>,
    /// One line per gated quantity outside tolerance; empty = gate passes.
    pub regressions: Vec<String>,
}

fn pct_change(before: u64, after: u64) -> f64 {
    if before == 0 {
        if after == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (after as f64 - before as f64) / before as f64
    }
}

/// Compare `after` against the `before` baseline under `opts`.
pub fn diff(before: &RunReport, after: &RunReport, opts: &DiffOptions) -> DiffResult {
    let mut result = DiffResult::default();

    let gated = |name: &str| match &opts.gate_counters {
        Some(list) => list.iter().any(|g| g == name),
        None => true,
    };

    let mut counter_keys: Vec<&String> = before.counters.keys().collect();
    for key in after.counters.keys() {
        if !before.counters.contains_key(key) {
            counter_keys.push(key);
        }
    }
    counter_keys.sort();
    for key in counter_keys {
        let b = before.counters.get(key).copied();
        let a = after.counters.get(key).copied();
        let (b, a) = match (b, a) {
            (Some(b), Some(a)) => (b, a),
            // A key on one side only is a schema change, not a perf
            // regression; report it but never gate on it.
            _ => {
                result.lines.push(format!(
                    "counter {key}: only in {} report",
                    if b.is_some() { "baseline" } else { "current" }
                ));
                continue;
            }
        };
        let pct = pct_change(b, a);
        if a != b {
            result
                .lines
                .push(format!("counter {key}: {b} -> {a} ({pct:+.1}%)"));
        }
        if gated(key) && pct.abs() > opts.counter_tolerance_pct {
            result.regressions.push(format!(
                "counter {key} drifted {pct:+.1}% ({b} -> {a}), tolerance {}%",
                opts.counter_tolerance_pct
            ));
        }
    }

    let before_total = before.total_self_ns().max(1);
    let after_total = after.total_self_ns().max(1);
    for (name, b) in &before.timings {
        let a = match after.timings.get(name) {
            Some(a) => *a,
            None => {
                result
                    .lines
                    .push(format!("timing {name}: missing from current report"));
                continue;
            }
        };
        let b_share = 100.0 * b.self_ns as f64 / before_total as f64;
        let a_share = 100.0 * a.self_ns as f64 / after_total as f64;
        let share_delta = a_share - b_share;
        let time_pct = pct_change(b.total_ns, a.total_ns);
        result.lines.push(format!(
            "timing {name}: self share {b_share:.1}% -> {a_share:.1}% ({share_delta:+.1} pts), total {} -> {} ({time_pct:+.1}%)",
            crate::spans::human_ns(b.total_ns),
            crate::spans::human_ns(a.total_ns),
        ));
        // Tiny spans are timer noise; gate only what carries real time on
        // either side.
        if b.self_ns < opts.min_ns && a.self_ns < opts.min_ns {
            continue;
        }
        if share_delta > opts.share_tolerance_pts {
            result.regressions.push(format!(
                "timing {name} self share grew {share_delta:+.1} pts ({b_share:.1}% -> {a_share:.1}%), tolerance {} pts",
                opts.share_tolerance_pts
            ));
        }
        if let Some(tol) = opts.time_tolerance_pct {
            if time_pct > tol {
                result.regressions.push(format!(
                    "timing {name} total grew {time_pct:+.1}% ({} -> {}), tolerance {tol}%",
                    crate::spans::human_ns(b.total_ns),
                    crate::spans::human_ns(a.total_ns),
                ));
            }
        }
    }
    for name in after.timings.keys() {
        if !before.timings.contains_key(name) {
            result
                .lines
                .push(format!("timing {name}: new span (no baseline)"));
        }
    }

    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(counters: &[(&str, u64)], timings: &[(&str, u64, u64)]) -> RunReport {
        RunReport {
            counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            timings: timings
                .iter()
                .map(|(k, total, selfv)| {
                    (
                        k.to_string(),
                        Timing {
                            count: 1,
                            total_ns: *total,
                            self_ns: *selfv,
                            max_ns: *total,
                        },
                    )
                })
                .collect(),
            faults: Vec::new(),
        }
    }

    #[test]
    fn parses_report_blocks() {
        let text = r#"{"schema":"aggclust-run-report-v1","host":{"arch":"x86_64"},
            "timings":{"balls":{"count":2,"total_ns":100,"self_ns":80,"max_ns":60,"ns_hist":[0,2]}},
            "faults":["spill.write torn #1"],
            "metrics":{"oracle_dense_evals":42,"spill_bytes_hist":[1,2,3]}}"#;
        let r = RunReport::parse(text).unwrap();
        assert_eq!(r.counters.get("oracle_dense_evals"), Some(&42));
        assert!(
            !r.counters.contains_key("spill_bytes_hist"),
            "histograms are not counters"
        );
        assert_eq!(r.timings["balls"].self_ns, 80);
        assert_eq!(r.faults, vec!["spill.write torn #1".to_string()]);
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(RunReport::parse(r#"{"schema":"v2"}"#).is_err());
        assert!(RunReport::parse(r#"{}"#).is_err());
    }

    #[test]
    fn exact_counter_gate_trips_both_directions() {
        let before = report(&[("evals", 100)], &[]);
        let regressed = report(&[("evals", 150)], &[]);
        let improved = report(&[("evals", 50)], &[]);
        let opts = DiffOptions::default();
        assert_eq!(diff(&before, &regressed, &opts).regressions.len(), 1);
        assert_eq!(diff(&before, &improved, &opts).regressions.len(), 1);
        assert!(diff(&before, &before, &opts).regressions.is_empty());
    }

    #[test]
    fn counter_tolerance_and_gate_list() {
        let before = report(&[("evals", 100), ("retries", 2)], &[]);
        let after = report(&[("evals", 104), ("retries", 7)], &[]);
        let opts = DiffOptions {
            counter_tolerance_pct: 5.0,
            gate_counters: Some(vec!["evals".to_string()]),
            ..DiffOptions::default()
        };
        // evals drifted 4% (within 5%), retries is not gated at all.
        assert!(diff(&before, &after, &opts).regressions.is_empty());
    }

    #[test]
    fn share_gate_ignores_tiny_spans_and_catches_growth() {
        let before = report(
            &[],
            &[
                ("big", 50_000_000, 50_000_000),
                ("other", 50_000_000, 50_000_000),
                ("tiny", 1_000, 500),
            ],
        );
        // `big` grows from ~50% to ~90% of self time: regression. `tiny`
        // doubles but stays under min_ns, so it is never gated.
        let after = report(
            &[],
            &[
                ("big", 90_000_000, 90_000_000),
                ("other", 10_000_000, 10_000_000),
                ("tiny", 2_000, 1_000),
            ],
        );
        let opts = DiffOptions {
            share_tolerance_pts: 5.0,
            ..DiffOptions::default()
        };
        let d = diff(&before, &after, &opts);
        assert_eq!(d.regressions.len(), 1, "{:?}", d.regressions);
        assert!(d.regressions[0].contains("big"));
    }

    #[test]
    fn absolute_time_gate_is_opt_in() {
        let before = report(&[], &[("work", 100_000_000, 100_000_000)]);
        let after = report(&[], &[("work", 300_000_000, 300_000_000)]);
        let defaults = DiffOptions::default();
        assert!(
            diff(&before, &after, &defaults).regressions.is_empty(),
            "share unchanged, absolute gate off by default"
        );
        let opts = DiffOptions {
            time_tolerance_pct: Some(50.0),
            ..DiffOptions::default()
        };
        assert_eq!(diff(&before, &after, &opts).regressions.len(), 1);
    }
}
