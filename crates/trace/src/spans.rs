//! Span-tree reconstruction from a JSONL trace.
//!
//! The main binary's `--trace-out` sink emits one JSON object per line:
//! `span_start` / `span_end` pairs (correlated by `id`, LIFO within a
//! thread) plus one-shot `event` records, every record stamped with the
//! emitting thread's `tid`. This module replays those records into
//!
//! * an aggregated **span tree** — per call-path node with count, total
//!   (wall-clock inside the span) and self time (total minus child spans
//!   on the same thread), and
//! * **folded stacks** — `root;child;leaf self_ns` lines, the input format
//!   of flamegraph tooling (`flamegraph.pl`, speedscope, inferno).

use crate::json::{self, Json};
use std::collections::BTreeMap;

/// One node of the aggregated span tree: a unique call path.
#[derive(Debug, Default)]
pub struct SpanNode {
    /// Number of `span_end` records folded into this node.
    pub count: u64,
    /// Total nanoseconds spent inside spans at this path.
    pub total_ns: u64,
    /// Total minus time attributed to child spans on the same thread.
    pub self_ns: u64,
    /// Child paths, keyed by span name.
    pub children: BTreeMap<String, SpanNode>,
}

/// Everything the analyzer extracted from one trace file.
#[derive(Debug, Default)]
pub struct TraceStats {
    /// Virtual root; its children are the top-level spans.
    pub root: SpanNode,
    /// Folded stacks: `"a;b;c" -> self_ns` summed over occurrences.
    pub folded: BTreeMap<String, u64>,
    /// Total records parsed.
    pub records: u64,
    /// One-shot events seen (not part of the tree).
    pub events: u64,
    /// `span_end` records with no matching open span — a truncated trace
    /// or interleaving bug; they are dropped from the tree.
    pub unmatched_ends: u64,
    /// Spans still open when the trace ended (killed run): reported, not
    /// folded into the tree (their elapsed time is unknown).
    pub unclosed_spans: u64,
    /// Lines that did not parse as JSON (typically a torn final line).
    pub malformed_lines: u64,
}

#[derive(Debug)]
struct OpenFrame {
    name: String,
    id: u64,
    /// Nanoseconds attributed to already-closed child spans.
    child_ns: u64,
}

/// Replay a JSONL trace into aggregated span statistics.
///
/// Tolerant by design: malformed lines and unmatched records are counted
/// and skipped — a trace from a killed or faulted run still analyzes.
pub fn analyze(text: &str) -> TraceStats {
    let mut stats = TraceStats::default();
    // Per-thread stack of open spans. `tid` is the emitting thread's
    // process-unique id, so LIFO pairing holds within each key.
    let mut stacks: BTreeMap<u64, Vec<OpenFrame>> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record = match json::parse(line) {
            Ok(v) => v,
            Err(_) => {
                stats.malformed_lines += 1;
                continue;
            }
        };
        stats.records += 1;
        let tid = record.get("tid").and_then(Json::as_u64).unwrap_or(0);
        match record.get("type").and_then(Json::as_str) {
            Some("span_start") => {
                let name = record
                    .get("span")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                let id = record.get("id").and_then(Json::as_u64).unwrap_or(0);
                stacks.entry(tid).or_default().push(OpenFrame {
                    name,
                    id,
                    child_ns: 0,
                });
            }
            Some("span_end") => {
                let id = record.get("id").and_then(Json::as_u64).unwrap_or(0);
                let elapsed_ns = record.get("elapsed_ns").and_then(Json::as_u64).unwrap_or(0);
                let stack = stacks.entry(tid).or_default();
                match stack.last() {
                    Some(top) if top.id == id => {}
                    _ => {
                        // Out-of-order end: drop it rather than corrupt the
                        // pairing of everything beneath.
                        stats.unmatched_ends += 1;
                        continue;
                    }
                }
                let frame = match stack.pop() {
                    Some(f) => f,
                    None => continue, // unreachable: guarded above
                };
                if let Some(parent) = stack.last_mut() {
                    parent.child_ns = parent.child_ns.saturating_add(elapsed_ns);
                }
                let self_ns = elapsed_ns.saturating_sub(frame.child_ns);
                let path: Vec<&str> = stack
                    .iter()
                    .map(|f| f.name.as_str())
                    .chain(std::iter::once(frame.name.as_str()))
                    .collect();
                let mut node = &mut stats.root;
                for seg in &path {
                    node = node.children.entry((*seg).to_string()).or_default();
                }
                node.count += 1;
                node.total_ns = node.total_ns.saturating_add(elapsed_ns);
                node.self_ns = node.self_ns.saturating_add(self_ns);
                let folded = stats.folded.entry(path.join(";")).or_insert(0);
                *folded = folded.saturating_add(self_ns);
            }
            Some("event") => stats.events += 1,
            _ => {}
        }
    }
    stats.unclosed_spans = stacks.values().map(|s| s.len() as u64).sum();
    stats
}

impl SpanNode {
    /// Total nanoseconds across the immediate children (= root wall-clock
    /// when called on the virtual root).
    pub fn children_total_ns(&self) -> u64 {
        self.children
            .values()
            .fold(0u64, |acc, c| acc.saturating_add(c.total_ns))
    }
}

/// Render the aggregated tree as indented lines, children sorted by total
/// time descending (name as tiebreak, so output is deterministic).
pub fn render_tree(stats: &TraceStats) -> String {
    let mut out = String::new();
    let denom = stats.root.children_total_ns().max(1);
    fn walk(out: &mut String, name: &str, node: &SpanNode, depth: usize, denom: u64) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{name:<30} count {:>8}  total {:>12}  self {:>12}  ({:>5.1}% self)\n",
            node.count,
            human_ns(node.total_ns),
            human_ns(node.self_ns),
            100.0 * node.self_ns as f64 / denom as f64,
        ));
        let mut kids: Vec<(&String, &SpanNode)> = node.children.iter().collect();
        kids.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        for (child_name, child) in kids {
            walk(out, child_name, child, depth + 1, denom);
        }
    }
    let mut tops: Vec<(&String, &SpanNode)> = stats.root.children.iter().collect();
    tops.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
    for (name, node) in tops {
        walk(&mut out, name, node, 0, denom);
    }
    out
}

/// Render the folded stacks: one `path self_ns` line per unique call path,
/// sorted by path for deterministic output. Zero-self lines are kept —
/// flamegraph tools treat them as structure-only frames.
pub fn render_folded(stats: &TraceStats) -> String {
    let mut out = String::new();
    for (path, self_ns) in &stats.folded {
        out.push_str(path);
        out.push(' ');
        out.push_str(&self_ns.to_string());
        out.push('\n');
    }
    out
}

/// `123456789` → `"123.457ms"`; keeps tree columns readable.
pub fn human_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(tid: u64, span: &str, id: u64, ts: u64) -> String {
        format!(
            "{{\"type\":\"span_start\",\"ts_ns\":{ts},\"tid\":{tid},\"span\":\"{span}\",\"id\":{id},\"fields\":{{}}}}"
        )
    }

    fn end(tid: u64, span: &str, id: u64, ts: u64, elapsed: u64) -> String {
        format!(
            "{{\"type\":\"span_end\",\"ts_ns\":{ts},\"tid\":{tid},\"span\":\"{span}\",\"id\":{id},\"elapsed_ns\":{elapsed},\"fields\":{{}}}}"
        )
    }

    #[test]
    fn nesting_attributes_self_and_total() {
        let trace = [
            start(1, "outer", 1, 0),
            start(1, "inner", 2, 10),
            end(1, "inner", 2, 40, 30),
            end(1, "outer", 1, 100, 100),
        ]
        .join("\n");
        let stats = analyze(&trace);
        let outer = &stats.root.children["outer"];
        assert_eq!(outer.count, 1);
        assert_eq!(outer.total_ns, 100);
        assert_eq!(outer.self_ns, 70);
        let inner = &outer.children["inner"];
        assert_eq!(inner.total_ns, 30);
        assert_eq!(inner.self_ns, 30);
        assert_eq!(stats.folded["outer"], 70);
        assert_eq!(stats.folded["outer;inner"], 30);
        assert_eq!(stats.unmatched_ends, 0);
        assert_eq!(stats.unclosed_spans, 0);
    }

    #[test]
    fn threads_do_not_interleave() {
        // Two threads with overlapping span ids; pairing is per-tid.
        let trace = [
            start(1, "a", 1, 0),
            start(2, "b", 2, 0),
            end(2, "b", 2, 50, 50),
            end(1, "a", 1, 80, 80),
        ]
        .join("\n");
        let stats = analyze(&trace);
        assert_eq!(stats.root.children["a"].self_ns, 80);
        assert_eq!(stats.root.children["b"].self_ns, 50);
        assert!(stats.root.children["a"].children.is_empty());
    }

    #[test]
    fn repeated_paths_aggregate() {
        let trace = [
            start(1, "p", 1, 0),
            end(1, "p", 1, 10, 10),
            start(1, "p", 2, 20),
            end(1, "p", 2, 35, 15),
        ]
        .join("\n");
        let stats = analyze(&trace);
        let p = &stats.root.children["p"];
        assert_eq!(p.count, 2);
        assert_eq!(p.total_ns, 25);
        assert_eq!(stats.folded["p"], 25);
    }

    #[test]
    fn torn_tail_and_unmatched_are_tolerated() {
        let trace = [
            start(1, "a", 1, 0),
            end(1, "zzz", 99, 5, 5), // end with no open span of that id
            "{\"type\":\"span_en".to_string(), // torn final line
        ]
        .join("\n");
        let stats = analyze(&trace);
        assert_eq!(stats.unmatched_ends, 1);
        assert_eq!(stats.malformed_lines, 1);
        assert_eq!(stats.unclosed_spans, 1);
        assert!(stats.root.children.is_empty());
    }

    #[test]
    fn folded_render_is_flamegraph_shaped() {
        let trace = [
            start(1, "a", 1, 0),
            start(1, "b", 2, 1),
            end(1, "b", 2, 4, 3),
            end(1, "a", 1, 10, 10),
        ]
        .join("\n");
        let rendered = render_folded(&analyze(&trace));
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines, vec!["a 7", "a;b 3"]);
        for line in lines {
            let (stack, value) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            assert!(value.parse::<u64>().is_ok());
        }
    }
}
