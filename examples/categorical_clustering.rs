//! Clustering categorical data (paper §2): every attribute of a table is a
//! clustering of its rows; aggregating them clusters the table — with
//! missing values handled by the coin model, and the number of clusters
//! chosen automatically.
//!
//! ```text
//! cargo run --release -p aggclust-bench --example categorical_clustering
//! ```

use aggclust_core::algorithms::agglomerative::{agglomerative, AgglomerativeParams};
use aggclust_core::instance::{CorrelationInstance, MissingPolicy};
use aggclust_data::presets::votes_like;
use aggclust_data::to_clusterings::attribute_clusterings;
use aggclust_metrics::{classification_error, confusion_matrix};

fn main() {
    // A congressional-votes-shaped table: 435 rows, 16 yes/no issues,
    // 288 missing values, and a party label we hold out for evaluation.
    let (dataset, _latent) = votes_like(7);
    println!(
        "Dataset: {} — {} rows, {} categorical attributes, {} missing values",
        dataset.name,
        dataset.len(),
        dataset.attributes().len(),
        dataset.num_missing()
    );

    // Step 1: one clustering per attribute. Rows sharing a value share a
    // cluster; rows with a missing value carry no label.
    let clusterings = attribute_clusterings(&dataset);
    println!(
        "Attribute clusterings: {} (first has k = {}, {} unlabeled rows)",
        clusterings.len(),
        clusterings[0].num_clusters(),
        clusterings[0].num_missing()
    );

    // Step 2: build the correlation-clustering instance. The fair-coin
    // policy makes an attribute missing on a row vote "together" or
    // "apart" with probability ½ each, in expectation.
    let instance = CorrelationInstance::from_partial(clusterings, MissingPolicy::Coin(0.5));
    let oracle = instance.dense_oracle();

    // Step 3: aggregate. No number of clusters is supplied anywhere.
    let clustering = agglomerative(&oracle, AgglomerativeParams::paper());
    println!(
        "\nAggregated into k = {} clusters (discovered automatically)",
        clustering.num_clusters()
    );

    // Evaluation against the held-out party labels.
    let ec = classification_error(&clustering, dataset.class_labels());
    println!("Classification error vs party labels: {:.1}%", 100.0 * ec);
    println!("\nConfusion matrix (clusters sorted by size):");
    let cm = confusion_matrix(&clustering, dataset.class_labels());
    print!("{}", cm.render(&dataset.class_names()));
    println!(
        "\nMost people cluster with their party; the crossover voters are\n\
         exactly the ones any attribute-based clustering must misplace."
    );
}
