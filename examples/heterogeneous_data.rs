//! Clustering heterogeneous data (paper §2): when a table mixes categorical
//! and numeric attributes with incomparable units, no single distance
//! measure makes sense — but each homogeneous slice can be clustered on its
//! own terms and the clusterings aggregated.
//!
//! Here the numeric columns are quantile-binned into clusterings (one
//! natural choice; any numeric clusterer would do) and aggregated together
//! with the categorical attribute clusterings.
//!
//! ```text
//! cargo run --release -p aggclust-bench --example heterogeneous_data
//! ```

use aggclust_core::algorithms::agglomerative::{agglomerative, AgglomerativeParams};
use aggclust_core::clustering::Clustering;
use aggclust_core::instance::{CorrelationInstance, MissingPolicy};
use aggclust_data::presets::census_like_scaled;
use aggclust_data::to_clusterings::{attribute_clusterings, heterogeneous_clusterings};
use aggclust_metrics::classification_error;
use aggclust_metrics::pair_counting::adjusted_rand_index;

fn main() {
    // A census-shaped table: 8 categorical attributes (occupation, race,
    // sex, ...) plus 6 numeric columns (age, hours-per-week, ...) whose
    // units cannot be compared to each other or to the categories.
    let n = 1500;
    let (dataset, latent) = census_like_scaled(n, 11);
    let truth = Clustering::from_labels(latent);
    println!(
        "Dataset: {} — {} rows, {} categorical + {} numeric attributes",
        dataset.name,
        dataset.len(),
        dataset.attributes().len(),
        dataset.numeric_columns().len()
    );

    let aggregate = |clusterings: Vec<aggclust_core::clustering::PartialClustering>| {
        let instance = CorrelationInstance::from_partial(clusterings, MissingPolicy::Coin(0.5));
        agglomerative(&instance.dense_oracle(), AgglomerativeParams::paper())
    };

    // Categorical attributes only.
    let cat_only = aggregate(attribute_clusterings(&dataset));
    // Categorical + quantile-binned numeric columns. Bin count matters:
    // coarse bins (3) keep same-group rows in the same bin and sharpen the
    // consensus; fine bins scatter them and fragment it — binning is the
    // "appropriate clustering algorithm" choice §2 leaves to the user.
    let hetero = aggregate(heterogeneous_clusterings(&dataset, 3));

    for (name, c) in [("categorical only", &cat_only), ("heterogeneous", &hetero)] {
        println!(
            "\n{name}: k = {}, ARI vs latent groups = {:.3}, E_C vs income = {:.1}%",
            c.num_clusters(),
            adjusted_rand_index(c, &truth),
            100.0 * classification_error(c, dataset.class_labels()),
        );
    }
    println!(
        "\nThe numeric columns carry the same latent group structure, so\n\
         folding them in as binned clusterings refines the consensus without\n\
         ever comparing dollars to years to categories (paper §2,\n\
         \"Clustering heterogeneous data\")."
    );
}
