//! Detecting outliers with clustering aggregation (paper §2): a node that
//! no clustering places consistently — or that every clustering isolates —
//! ends up a singleton in the aggregate, and the consensus diagnostics
//! rank it as an outlier before any clustering is even run.
//!
//! The paper's example: a horror movie featuring actress Julia Roberts and
//! directed by the "independent" director Lars von Trier — common values,
//! but no consensus on a common cluster.
//!
//! ```text
//! cargo run --release -p aggclust-bench --example outlier_detection
//! ```

use aggclust_core::clustering::Clustering;
use aggclust_core::consensus::ConsensusBuilder;
use aggclust_core::instance::CorrelationInstance;
use aggclust_metrics::stability::{ambiguity_scores, isolation_scores, top_outliers};

fn main() {
    // A movie table clustered by three attributes. Movies 0–3 are romantic
    // comedies (Julia Roberts / mainstream directors), movies 4–7 are
    // horror films; movie 8 is the paper's pathological case: a horror
    // movie (genre says horror) starring Julia Roberts (actress says
    // rom-com) directed by Lars von Trier (director says neither).
    let by_genre = Clustering::from_labels(vec![0, 0, 0, 0, 1, 1, 1, 1, 1]);
    let by_actress = Clustering::from_labels(vec![0, 0, 0, 0, 1, 1, 1, 1, 0]);
    let by_director = Clustering::from_labels(vec![0, 0, 1, 1, 2, 2, 3, 3, 4]);
    let inputs = vec![by_genre, by_actress, by_director];

    let instance = CorrelationInstance::from_clusterings(&inputs);
    let oracle = instance.dense_oracle();

    // Diagnostics before clustering: movie 8 has no consensus.
    let iso = isolation_scores(&oracle);
    let amb = ambiguity_scores(&oracle);
    println!("movie  isolation  ambiguity");
    for v in 0..9 {
        println!("{v:>5}  {:>9.3}  {:>9.3}", iso[v], amb[v]);
    }
    let suspects = top_outliers(&oracle, 2);
    println!("\ntop outlier candidates: {suspects:?}");
    assert_eq!(suspects[0], 8);

    // The aggregation agrees: movie 8 becomes a singleton.
    let result = ConsensusBuilder::new().aggregate(&inputs);
    let label8 = result.clustering.label(8);
    let alone = (0..8).all(|v| result.clustering.label(v) != label8);
    println!(
        "\naggregate: k = {}, movie 8 {} (cost {:.3}, lower bound {:.3})",
        result.clustering.num_clusters(),
        if alone {
            "is isolated as a singleton — an outlier"
        } else {
            "joined a cluster"
        },
        result.cost,
        result.lower_bound.unwrap()
    );
}
