//! Privacy-preserving clustering of vertically partitioned data
//! (paper §2): three organizations hold different attributes of the same
//! population. Each clusters its own columns locally and shares *only the
//! resulting label vector* — no attribute values ever leave a site — yet
//! the aggregation recovers the joint cluster structure.
//!
//! ```text
//! cargo run --release -p aggclust-bench --example privacy_preserving
//! ```

use aggclust_core::algorithms::local_search::{local_search, LocalSearchParams};
use aggclust_core::clustering::{Clustering, PartialClustering};
use aggclust_core::instance::{CorrelationInstance, MissingPolicy};
use aggclust_data::categorical::{AttrSpec, LatentClassConfig};
use aggclust_data::to_clusterings::attribute_clusterings;
use aggclust_metrics::pair_counting::adjusted_rand_index;

fn main() {
    // A shared population of 600 individuals with 3 hidden segments, whose
    // 9 attributes are split across three sites (3 columns each).
    let (dataset, latent) = LatentClassConfig {
        name: "population".into(),
        n: 600,
        cluster_weights: vec![3.0, 2.0, 1.0],
        cluster_to_class: vec![0, 1, 2],
        class_names: vec!["s1".into(), "s2".into(), "s3".into()],
        attrs: (0..9)
            .map(|i| AttrSpec::new(format!("attr-{i}"), 4, 0.15))
            .collect(),
        missing_count: 120,
        row_noise_levels: vec![],
        profile_overlaps: vec![],
        seed: 42,
    }
    .generate();
    let truth = Clustering::from_labels(latent);

    // Each site aggregates its own three attribute clusterings locally.
    // What crosses the wire is one label vector per site: which of *its*
    // local clusters each individual belongs to — no attribute values.
    let all_columns = attribute_clusterings(&dataset);
    let mut shared: Vec<PartialClustering> = Vec::new();
    for (site, columns) in all_columns.chunks(3).enumerate() {
        let local_instance =
            CorrelationInstance::from_partial(columns.to_vec(), MissingPolicy::Coin(0.5));
        let local = local_search(&local_instance.dense_oracle(), LocalSearchParams::default());
        println!(
            "site {} publishes a clustering with k = {} (ARI vs hidden segments: {:.3})",
            site + 1,
            local.num_clusters(),
            adjusted_rand_index(&local, &truth)
        );
        shared.push(PartialClustering::from_total(&local));
    }

    // A (possibly untrusted) coordinator aggregates the three published
    // clusterings.
    let joint_instance = CorrelationInstance::from_partial(shared, MissingPolicy::Coin(0.5));
    let joint = local_search(&joint_instance.dense_oracle(), LocalSearchParams::default());
    println!(
        "\njoint clustering: k = {}, ARI vs hidden segments: {:.3}",
        joint.num_clusters(),
        adjusted_rand_index(&joint, &truth)
    );
    println!(
        "\nOnly co-clustering relations were revealed; the sites' attribute\n\
         values never left their owners (paper §2, privacy-preserving\n\
         clustering)."
    );
}
