//! Quickstart: the worked example of Figure 1 of the paper, end to end.
//!
//! Three clusterings of six objects are aggregated into the clustering
//! that minimizes the total number of disagreements. Run with:
//!
//! ```text
//! cargo run --release -p aggclust-bench --example quickstart
//! ```

use aggclust_core::algorithms::agglomerative::{agglomerative, AgglomerativeParams};
use aggclust_core::algorithms::best::best_clustering;
use aggclust_core::clustering::Clustering;
use aggclust_core::cost::{correlation_cost, lower_bound};
use aggclust_core::distance::total_disagreement;
use aggclust_core::exact::optimal_clustering;
use aggclust_core::instance::{CorrelationInstance, DistanceOracle};

fn main() {
    // The three input clusterings of Figure 1 (columns C1, C2, C3).
    let c1 = Clustering::from_labels(vec![0, 0, 1, 1, 2, 2]);
    let c2 = Clustering::from_labels(vec![0, 1, 0, 1, 2, 3]);
    let c3 = Clustering::from_labels(vec![0, 1, 0, 1, 2, 2]);
    let inputs = vec![c1, c2, c3];

    println!("Input clusterings (objects v1..v6):");
    for (i, c) in inputs.iter().enumerate() {
        println!("  C{}: {:?}  (k = {})", i + 1, c.labels(), c.num_clusters());
    }

    // Reduce to correlation clustering: X_uv = fraction of clusterings
    // separating u and v (Figure 2 of the paper).
    let instance = CorrelationInstance::from_clusterings(&inputs);
    let oracle = instance.dense_oracle();
    println!("\nDerived distances (Figure 2):");
    println!("  X(v1,v3) = {:.3}  (solid edge, 1/3)", oracle.dist(0, 2));
    println!("  X(v1,v2) = {:.3}  (dashed edge, 2/3)", oracle.dist(0, 1));
    println!("  X(v1,v4) = {:.3}  (dotted edge, 1)", oracle.dist(0, 3));

    // Aggregate with the parameter-free AGGLOMERATIVE algorithm.
    let aggregate = agglomerative(&oracle, AgglomerativeParams::paper());
    println!(
        "\nAggregate: {:?}  (k = {} — found automatically, no k given)",
        aggregate.labels(),
        aggregate.num_clusters()
    );

    // The objective value: 5 disagreements, as in the paper.
    let disagreements = total_disagreement(&inputs, &aggregate);
    println!("Total disagreements D(C) = {disagreements} (paper: 5)");
    println!(
        "Correlation cost d(C) = {:.4} = D(C)/m",
        correlation_cost(&oracle, &aggregate)
    );

    // Compare against the exhaustive optimum and the trivial baseline.
    let exact = optimal_clustering(&oracle);
    println!(
        "\nExhaustive optimum over all {} partitions: cost {:.4} — {}",
        exact.partitions_examined,
        exact.cost,
        if exact.clustering == aggregate {
            "the aggregate IS optimal"
        } else {
            "the aggregate is not optimal"
        }
    );
    let best = best_clustering(&inputs);
    println!(
        "BestClustering picks input C{} with D = {} (2(1-1/m)-approximation)",
        best.index + 1,
        best.cost
    );
    println!(
        "Per-pair lower bound: {:.4} ≤ optimal cost {:.4}",
        lower_bound(&oracle),
        exact.cost
    );
}
