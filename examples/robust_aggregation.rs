//! Improving clustering robustness (paper §2 and Figure 3): run several
//! imperfect clustering algorithms on the same 2-D points and aggregate
//! their results — the mistakes cancel out.
//!
//! ```text
//! cargo run --release -p aggclust-bench --example robust_aggregation
//! ```

use aggclust_baselines::hierarchical::{hierarchical, HierarchicalParams, LinkageMethod};
use aggclust_baselines::kmeans::{kmeans, KMeansInit, KMeansParams};
use aggclust_core::algorithms::agglomerative::{agglomerative, AgglomerativeParams};
use aggclust_core::instance::CorrelationInstance;
use aggclust_data::synth2d::seven_groups;
use aggclust_metrics::pair_counting::adjusted_rand_index;

fn main() {
    // Seven perceptually distinct groups with features that trip up the
    // classic algorithms: a bridge between two blobs (bad for single
    // linkage), elongated strips (bad for k-means), uneven sizes.
    let data = seven_groups(3);
    let truth = data.truth_clustering();
    let rows = data.rows();
    println!("{} points in 7 groups\n", data.len());

    // Five imperfect input clusterings, all told k = 7.
    let single = hierarchical(&rows, HierarchicalParams::new(LinkageMethod::Single, 7));
    let complete = hierarchical(&rows, HierarchicalParams::new(LinkageMethod::Complete, 7));
    let average = hierarchical(&rows, HierarchicalParams::new(LinkageMethod::Average, 7));
    let ward = hierarchical(&rows, HierarchicalParams::new(LinkageMethod::Ward, 7));
    let km = kmeans(
        &rows,
        &KMeansParams {
            n_init: 1,
            init: KMeansInit::Random,
            ..KMeansParams::new(7, 3)
        },
    )
    .clustering;

    let inputs = vec![
        ("single linkage", single),
        ("complete linkage", complete),
        ("average linkage", average),
        ("Ward", ward),
        ("k-means", km),
    ];
    for (name, c) in &inputs {
        println!("  {name:<17} ARI = {:.3}", adjusted_rand_index(c, &truth));
    }

    // Aggregate. Note: the aggregation sees only the five label vectors —
    // it knows nothing about the points or the number of clusters.
    let instance = CorrelationInstance::from_clusterings(
        &inputs.iter().map(|(_, c)| c.clone()).collect::<Vec<_>>(),
    );
    let aggregate = agglomerative(&instance.dense_oracle(), AgglomerativeParams::paper());
    println!(
        "\n  {:<17} ARI = {:.3}   (k = {} discovered)",
        "AGGREGATE",
        adjusted_rand_index(&aggregate, &truth),
        aggregate.num_clusters()
    );
    println!(
        "\nDifferent algorithms make different mistakes; the aggregation\n\
         keeps the co-cluster decisions a majority agrees on, canceling\n\
         the individual errors (paper, Figure 3)."
    );
}
