//! Approximation-quality tests against the exhaustive optimum on a corpus
//! of small seeded instances — the paper's theoretical guarantees, checked
//! empirically where they are checkable.

use aggclust_core::algorithms::{
    agglomerative::agglomerative, balls::balls, best::best_clustering, furthest::furthest,
    local_search::local_search, AgglomerativeParams, BallsParams, FurthestParams,
    LocalSearchParams,
};
use aggclust_core::clustering::Clustering;
use aggclust_core::cost::correlation_cost;
use aggclust_core::exact::optimal_clustering;
use aggclust_core::instance::DenseOracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random set of m clusterings of n objects with ≤ kmax clusters.
fn random_instance(n: usize, m: usize, kmax: u32, seed: u64) -> Vec<Clustering> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| Clustering::from_labels((0..n).map(|_| rng.gen_range(0..kmax)).collect()))
        .collect()
}

/// Correlated instance: a hidden ground truth plus per-clustering noise —
/// closer to real aggregation workloads than uniform noise.
fn correlated_instance(n: usize, m: usize, k: u32, flips: usize, seed: u64) -> Vec<Clustering> {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k)).collect();
    (0..m)
        .map(|_| {
            let mut labels = truth.clone();
            for _ in 0..flips {
                let v = rng.gen_range(0..n);
                labels[v] = rng.gen_range(0..k);
            }
            Clustering::from_labels(labels)
        })
        .collect()
}

#[test]
fn balls_quarter_alpha_is_3_approximate() {
    // Theorem 1 of the paper, over 40 instances of both flavors.
    for seed in 0..20u64 {
        for inputs in [
            random_instance(7, 4, 3, seed),
            correlated_instance(7, 5, 3, 2, seed),
        ] {
            let oracle = DenseOracle::from_clusterings(&inputs);
            let opt = optimal_clustering(&oracle).cost;
            let cost = correlation_cost(&oracle, &balls(&oracle, BallsParams::theoretical()));
            assert!(
                cost <= 3.0 * opt + 1e-9,
                "seed {seed}: BALLS {cost} vs 3·OPT {}",
                3.0 * opt
            );
        }
    }
}

#[test]
fn best_clustering_bound_holds_and_is_not_vacuous() {
    let mut worst_ratio: f64 = 0.0;
    for seed in 0..30u64 {
        let inputs = random_instance(6, 3, 3, seed);
        let m = inputs.len() as f64;
        let oracle = DenseOracle::from_clusterings(&inputs);
        let opt = optimal_clustering(&oracle).cost * m;
        if opt < 1e-9 {
            continue;
        }
        let best = best_clustering(&inputs).cost as f64;
        let ratio = best / opt;
        worst_ratio = worst_ratio.max(ratio);
        assert!(
            ratio <= 2.0 * (1.0 - 1.0 / m) + 1e-9,
            "seed {seed}: {ratio}"
        );
    }
    // The bound is not trivially loose on this corpus: some instance gets
    // within 10% of it or at least above 1 (BestClustering is not optimal).
    assert!(worst_ratio > 1.0, "BestClustering was optimal everywhere");
}

#[test]
fn agglomerative_is_2_approximate_for_three_clusterings() {
    // The paper's m = 3 guarantee for AGGLOMERATIVE.
    for seed in 0..25u64 {
        let inputs = random_instance(7, 3, 3, seed);
        let oracle = DenseOracle::from_clusterings(&inputs);
        let opt = optimal_clustering(&oracle).cost;
        let cost = correlation_cost(
            &oracle,
            &agglomerative(&oracle, AgglomerativeParams::paper()),
        );
        assert!(
            cost <= 2.0 * opt + 1e-9,
            "seed {seed}: AGGLOMERATIVE {cost} vs 2·OPT {}",
            2.0 * opt
        );
    }
}

#[test]
fn balls_m3_is_2_approximate() {
    // "For the case that m = 3 it is easy to show that the cost of the
    // BALLS algorithm is at most 2 times that of the optimal solution."
    for seed in 0..25u64 {
        let inputs = random_instance(7, 3, 3, seed);
        let oracle = DenseOracle::from_clusterings(&inputs);
        let opt = optimal_clustering(&oracle).cost;
        let cost = correlation_cost(&oracle, &balls(&oracle, BallsParams::theoretical()));
        assert!(
            cost <= 2.0 * opt + 1e-9,
            "seed {seed}: BALLS(m=3) {cost} vs 2·OPT {}",
            2.0 * opt
        );
    }
}

#[test]
fn all_algorithms_are_near_optimal_on_correlated_instances() {
    // On realistic (correlated) aggregation inputs every algorithm should
    // land within 1.5× of the optimum — the regime the paper's experiments
    // live in.
    for seed in 0..15u64 {
        let inputs = correlated_instance(8, 5, 3, 2, 1000 + seed);
        let oracle = DenseOracle::from_clusterings(&inputs);
        let opt = optimal_clustering(&oracle).cost;
        let results = [
            (
                "agglomerative",
                correlation_cost(
                    &oracle,
                    &agglomerative(&oracle, AgglomerativeParams::paper()),
                ),
            ),
            (
                "furthest",
                correlation_cost(&oracle, &furthest(&oracle, FurthestParams::default())),
            ),
            (
                "balls-0.4",
                correlation_cost(&oracle, &balls(&oracle, BallsParams::practical())),
            ),
            (
                "local-search",
                correlation_cost(
                    &oracle,
                    &local_search(&oracle, LocalSearchParams::default()),
                ),
            ),
        ];
        for (name, cost) in results {
            assert!(
                cost <= 1.5 * opt + 1e-6,
                "seed {seed}: {name} cost {cost} vs opt {opt}"
            );
        }
    }
}

#[test]
fn local_search_matches_optimum_on_most_small_instances() {
    let mut optimal_hits = 0;
    let total = 20;
    for seed in 0..total {
        let inputs = correlated_instance(8, 4, 3, 2, 2000 + seed);
        let oracle = DenseOracle::from_clusterings(&inputs);
        let opt = optimal_clustering(&oracle).cost;
        let cost = correlation_cost(
            &oracle,
            &local_search(&oracle, LocalSearchParams::default()),
        );
        if (cost - opt).abs() < 1e-9 {
            optimal_hits += 1;
        }
    }
    assert!(
        optimal_hits >= (0.7 * total as f64) as usize,
        "LocalSearch optimal on only {optimal_hits}/{total}"
    );
}
