//! In-process chaos: seeded fault storms against the checkpoint+spill
//! workload. Each storm arms a randomly composed (but fully deterministic)
//! `FaultPlan` and asserts the degradation-chain contract: no panics, every
//! injected fault surfaces as a typed error/warning or is absorbed by a
//! retry/rebuild, anytime labels are always produced, and filesystem faults
//! never change the labels at all. The process-level half of the harness
//! (SIGKILL + resume under injection, CLI exit codes) lives in
//! `ci/chaos.sh`.

use std::path::{Path, PathBuf};
use std::time::Duration;

use aggclust_core::algorithms::{Algorithm, BallsParams};
use aggclust_core::consensus::{ConsensusBuilder, Warning};
use aggclust_core::failpoint::{arm, FaultPlan};
use aggclust_core::snapshot::{load_snapshot, SnapshotLoad};
use aggclust_core::test_support::splitmix64;
use aggclust_core::{iofs, RunBudget};
use aggclust_tests::adversarial_disagreeing;

/// Tight enough to refuse the dense matrix and force tile spill.
const CHAOS_MEM_CAP: u64 = 16 * 1024;

fn chaos_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aggclust_chaos_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn chaos_builder(dir: &Path) -> ConsensusBuilder {
    ConsensusBuilder::new()
        .algorithm(Algorithm::Balls(BallsParams::default()))
        .budget(RunBudget::unlimited().with_mem_limit_bytes(CHAOS_MEM_CAP))
        .spill_dir(dir.join("tiles"))
        .checkpoint(dir.join("ckpt.bin"), Duration::ZERO)
}

/// Fault templates the storm generator samples from. Every filesystem site
/// the checkpoint+spill workload touches is represented; `{s}` is replaced
/// with a per-storm seed so `prob=` coin streams differ between storms but
/// replay identically for the same storm id.
const TEMPLATES: &[&str] = &[
    "spill.write=io_error:prob=0.4:seed={s}",
    "spill.write=torn:prob=0.6:seed={s}",
    "spill.read=io_error:prob=0.5:seed={s}",
    "spill.fsync=io_error:prob=0.4:seed={s}",
    "spill.rename=enospc:prob=0.4:seed={s}",
    "spill.create=io_error:nth=2",
    "spill.create_dir=io_error:nth=1",
    "snapshot.write=torn:prob=0.7:seed={s}",
    "snapshot.rename=io_error:prob=0.5:seed={s}",
    "snapshot.fsync=enospc:nth=1",
    "snapshot.create=io_error:prob=0.3:seed={s}",
    "spill.write=delay:ms=1:prob=0.1:seed={s}",
];

/// Compose a deterministic storm: one to three clauses drawn from
/// [`TEMPLATES`], every clause path-scoped to `dir` so concurrently running
/// tests in this binary are untouched.
fn storm_plan(storm: u64, dir: &Path) -> FaultPlan {
    let mut state = storm.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
    let clauses = 1 + (splitmix64(&mut state) % 3) as usize;
    let spec = (0..clauses)
        .map(|_| {
            let template = TEMPLATES[(splitmix64(&mut state) as usize) % TEMPLATES.len()];
            let seeded = template.replace("{s}", &splitmix64(&mut state).to_string());
            format!("{seeded}:path={}", dir.display())
        })
        .collect::<Vec<_>>()
        .join(",");
    FaultPlan::parse(&spec).expect("storm spec must parse")
}

#[test]
fn seeded_fault_storms_never_panic_and_never_change_the_labels() {
    let inputs = adversarial_disagreeing(100, 4);
    let clean_dir = chaos_dir("reference");
    let reference = chaos_builder(&clean_dir)
        .try_aggregate(&inputs)
        .expect("clean run");
    std::fs::remove_dir_all(&clean_dir).ok();

    for storm in 0..48u64 {
        let dir = chaos_dir(&format!("storm{storm}"));
        let guard = arm(storm_plan(storm, &dir));
        let result = chaos_builder(&dir)
            .try_aggregate(&inputs)
            .unwrap_or_else(|e| panic!("storm {storm} surfaced a hard error: {e}"));
        let log = guard.injection_log();
        drop(guard);
        // Filesystem faults on checkpoint/spill paths are absorbed by
        // retries, rebuilds, or oracle degradation — none of them may alter
        // the consensus labels, and the anytime contract holds regardless.
        assert_eq!(
            result.clustering.labels(),
            reference.clustering.labels(),
            "storm {storm} ({log:?}) changed the labels"
        );
        // Whatever the storm broke is visible as typed warnings, never as
        // silence plus a wrong answer: a spill that could not be built or
        // served reports SpillFailed / degradation warnings with context.
        for w in &result.warnings {
            assert!(!w.kind().is_empty(), "storm {storm}: warning without kind");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn the_same_plan_and_seed_replay_the_same_injection_sequence() {
    let dir = chaos_dir("replay");
    let spec = format!(
        "replay.write=io_error:prob=0.5:seed=42,replay.fsync=torn:prob=0.25:seed=9:path={}",
        dir.display()
    );
    let drive = || {
        let guard = arm(FaultPlan::parse(&spec).expect("parse"));
        // A fixed op sequence through the facade: the injection log must be
        // a pure function of (plan, seed, op sequence).
        for i in 0..32 {
            let path = dir.join(format!("f{i}"));
            let _ = iofs::write_file_atomic("replay", &path, b"payload");
        }
        guard.injection_log()
    };
    let first = drive();
    let second = drive();
    assert!(!first.is_empty(), "a prob=0.5 storm over 32 ops must fire");
    assert_eq!(
        first, second,
        "injection sequence must replay bit-identically"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn alloc_storms_degrade_to_anytime_labels_not_panics() {
    let inputs = adversarial_disagreeing(100, 4);
    let dir = chaos_dir("alloc");
    // Every tracked allocation beyond the first mebibyte fails: the run
    // must walk the degradation chain and still produce full-length labels.
    let guard = arm(FaultPlan::parse("alloc=fail:after_mb=1").expect("parse"));
    let result = ConsensusBuilder::new()
        .algorithm(Algorithm::Balls(BallsParams::default()))
        .spill_dir(dir.join("tiles"))
        .try_aggregate(&inputs)
        .expect("alloc storm must degrade, not fail");
    drop(guard);
    assert_eq!(result.clustering.labels().len(), 100);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clock_skew_still_produces_anytime_labels_under_a_deadline() {
    let inputs = adversarial_disagreeing(100, 4);
    // +50ms of injected skew on the system clock makes the deadline appear
    // nearer than it is; the run may be cut short but must stay well-formed.
    let guard = arm(FaultPlan::parse("clock=skew:ms=50").expect("parse"));
    let result = ConsensusBuilder::new()
        .algorithm(Algorithm::Balls(BallsParams::default()))
        .budget(RunBudget::unlimited().with_deadline_ms(60))
        .try_aggregate(&inputs)
        .expect("skewed run must stay well-formed");
    drop(guard);
    assert_eq!(result.clustering.labels().len(), 100);
}

#[test]
fn torn_checkpoints_under_injection_resume_fresh_or_valid_never_garbage() {
    let inputs = adversarial_disagreeing(100, 4);
    for storm in 0..8u64 {
        let dir = chaos_dir(&format!("torn{storm}"));
        let spec = format!(
            "snapshot.write=torn:prob=0.8:seed={storm}:path={}",
            dir.display()
        );
        let guard = arm(FaultPlan::parse(&spec).expect("parse"));
        let result = chaos_builder(&dir).try_aggregate(&inputs).expect("run");
        drop(guard);
        assert_eq!(result.clustering.labels().len(), 100);
        // Whatever the torn writer left behind, loading it yields a typed
        // outcome: a valid snapshot, a clean miss, or a detected corruption.
        match load_snapshot(&dir.join("ckpt.bin")) {
            SnapshotLoad::Loaded(_) | SnapshotLoad::Missing | SnapshotLoad::Corrupt(_) => {}
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn spill_storms_report_every_hard_failure_as_a_typed_warning() {
    let inputs = adversarial_disagreeing(100, 4);
    let dir = chaos_dir("hardfail");
    // Deny the spill directory itself: the run must degrade with a
    // SpillFailed warning (then lazy/sampling), not die.
    let spec = format!("spill.create_dir=io_error:path={}", dir.display());
    let guard = arm(FaultPlan::parse(&spec).expect("parse"));
    let result = ConsensusBuilder::new()
        .algorithm(Algorithm::Balls(BallsParams::default()))
        .budget(RunBudget::unlimited().with_mem_limit_bytes(CHAOS_MEM_CAP))
        .spill_dir(dir.join("tiles"))
        .try_aggregate(&inputs)
        .expect("denied spill dir must degrade");
    let log = guard.injection_log();
    drop(guard);
    assert!(!log.is_empty(), "the create_dir fault must have fired");
    assert!(
        result
            .warnings
            .iter()
            .any(|w| matches!(w, Warning::SpillFailed { .. })),
        "hard spill failure must surface as SpillFailed, got {:?}",
        result.warnings
    );
    assert_eq!(result.clustering.labels().len(), 100);
    std::fs::remove_dir_all(&dir).ok();
}
