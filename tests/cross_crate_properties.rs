//! Property-based tests spanning crates: metrics vs core identities,
//! baseline clusterers feeding aggregation, and generator invariants.

use aggclust_baselines::kmeans::{kmeans, KMeansParams};
use aggclust_core::algorithms::agglomerative::{agglomerative, AgglomerativeParams};
use aggclust_core::clustering::Clustering;
use aggclust_core::distance::{disagreement_distance, normalized_disagreement};
use aggclust_core::instance::CorrelationInstance;
use aggclust_metrics::information::{entropy, mutual_information, variation_of_information};
use aggclust_metrics::pair_counting::{pair_counts, rand_index};
use aggclust_metrics::{classification_error, purity};
use proptest::prelude::*;

fn clustering_strategy(n: usize, kmax: u32) -> impl Strategy<Value = Clustering> {
    prop::collection::vec(0..kmax, n).prop_map(Clustering::from_labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rand_index_is_one_minus_normalized_disagreement(
        (a, b) in (2usize..25).prop_flat_map(|n| {
            (clustering_strategy(n, 5), clustering_strategy(n, 5))
        })
    ) {
        let ri = rand_index(&a, &b);
        let nd = normalized_disagreement(&a, &b);
        prop_assert!((ri - (1.0 - nd)).abs() < 1e-12);
    }

    #[test]
    fn pair_counts_recover_disagreement_distance(
        (a, b) in (2usize..25).prop_flat_map(|n| {
            (clustering_strategy(n, 5), clustering_strategy(n, 5))
        })
    ) {
        let pc = pair_counts(&a, &b);
        prop_assert_eq!(pc.first_only + pc.second_only, disagreement_distance(&a, &b));
    }

    #[test]
    fn purity_complements_classification_error(
        (c, classes) in (2usize..20).prop_flat_map(|n| {
            (clustering_strategy(n, 4), prop::collection::vec(0u32..3, n))
        })
    ) {
        let e = classification_error(&c, &classes);
        let p = purity(&c, &classes);
        prop_assert!((e + p - 1.0).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&e));
    }

    #[test]
    fn vi_decomposes_into_entropies_and_mi(
        (a, b) in (2usize..20).prop_flat_map(|n| {
            (clustering_strategy(n, 4), clustering_strategy(n, 4))
        })
    ) {
        let vi = variation_of_information(&a, &b);
        let manual = entropy(&a) + entropy(&b) - 2.0 * mutual_information(&a, &b);
        prop_assert!((vi - manual.max(0.0)).abs() < 1e-9);
        // MI bounded by each entropy.
        prop_assert!(mutual_information(&a, &b) <= entropy(&a) + 1e-9);
        prop_assert!(mutual_information(&a, &b) <= entropy(&b) + 1e-9);
    }

    #[test]
    fn aggregating_identical_clusterings_is_identity(
        (c, copies) in (3usize..15).prop_flat_map(|n| {
            (clustering_strategy(n, 4), 1usize..5)
        })
    ) {
        let inputs = vec![c.clone(); copies];
        let instance = CorrelationInstance::from_clusterings(&inputs);
        let result = agglomerative(&instance.dense_oracle(), AgglomerativeParams::paper());
        prop_assert_eq!(result, c);
    }

    #[test]
    fn kmeans_clustering_is_valid_aggregation_input(
        seed in 0u64..50
    ) {
        // k-means output must always be consumable by the aggregation
        // pipeline without panics, whatever the seed.
        let pts: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 5) as f64, (seed % 7) as f64 * 0.1 * (i as f64)])
            .collect();
        let a = kmeans(&pts, &KMeansParams::new(3, seed)).clustering;
        let b = kmeans(&pts, &KMeansParams::new(4, seed + 1)).clustering;
        let instance = CorrelationInstance::from_clusterings(&[a, b]);
        let result = agglomerative(&instance.dense_oracle(), AgglomerativeParams::paper());
        prop_assert_eq!(result.len(), 30);
    }
}
