//! End-to-end pipelines across all crates: generators → baseline
//! clusterers → aggregation → metrics, mirroring the experiment harness at
//! test-friendly sizes.

use aggclust_baselines::hierarchical::{hierarchical, HierarchicalParams, LinkageMethod};
use aggclust_baselines::kmeans::{kmeans, KMeansParams};
use aggclust_baselines::limbo::{limbo, LimboParams};
use aggclust_baselines::rock::{rock, RockParams};
use aggclust_core::algorithms::agglomerative::{agglomerative, AgglomerativeParams};
use aggclust_core::algorithms::local_search::local_search_from;
use aggclust_core::clustering::Clustering;
use aggclust_core::cost::{correlation_cost, lower_bound};
use aggclust_core::instance::{CorrelationInstance, MissingPolicy};
use aggclust_data::presets::{census_like_scaled, mushrooms_like, votes_like};
use aggclust_data::synth2d::{gaussian_with_noise, seven_groups};
use aggclust_data::to_clusterings::{attribute_clusterings, heterogeneous_clusterings};
use aggclust_metrics::pair_counting::adjusted_rand_index;
use aggclust_metrics::{classification_error, confusion_matrix};

#[test]
fn categorical_pipeline_on_votes_sample() {
    let (dataset, _) = votes_like(5);
    let dataset = dataset.subsample_random(150, 1);
    let clusterings = attribute_clusterings(&dataset);
    assert_eq!(clusterings.len(), 16);
    let instance = CorrelationInstance::from_partial(clusterings, MissingPolicy::Coin(0.5));
    let oracle = instance.dense_oracle();

    let clustering = agglomerative(&oracle, AgglomerativeParams::paper());
    // The party structure must be recovered: few clusters, decent purity.
    assert!(
        clustering.num_clusters() <= 6,
        "k = {}",
        clustering.num_clusters()
    );
    // Subsampling to 150 rows keeps the party structure but adds variance;
    // a random 2-way labeling would sit near 0.5.
    let ec = classification_error(&clustering, dataset.class_labels());
    assert!(ec < 0.35, "E_C = {ec}");
    // Cost sandwich: lower bound ≤ cost ≤ singletons cost.
    let cost = correlation_cost(&oracle, &clustering);
    assert!(cost >= lower_bound(&oracle) - 1e-9);
    let singles = correlation_cost(&oracle, &Clustering::singletons(dataset.len()));
    assert!(cost <= singles + 1e-9);
}

#[test]
fn mushrooms_confusion_matrix_has_a_large_mixed_cluster() {
    // The Table-1 structure: the biggest cluster mixes both classes
    // because two latent clusters share most attributes.
    let (dataset, _) = mushrooms_like(1);
    let dataset = dataset.subsample_random(800, 2);
    let clusterings = attribute_clusterings(&dataset);
    let instance = CorrelationInstance::from_partial(clusterings, MissingPolicy::Coin(0.5));
    let clustering = agglomerative(&instance.dense_oracle(), AgglomerativeParams::paper());
    let cm = confusion_matrix(&clustering, dataset.class_labels());
    let sizes = cm.cluster_sizes();
    let biggest = (0..cm.num_clusters())
        .max_by_key(|&c| sizes[c])
        .expect("at least one cluster");
    let row = &cm.counts()[biggest];
    // Both classes present in the biggest cluster, minority ≥ 10%.
    let total: u64 = row.iter().sum();
    let minority = *row.iter().min().unwrap();
    assert!(
        minority as f64 >= 0.1 * total as f64,
        "biggest cluster is too pure: {row:?}"
    );
}

#[test]
fn two_dimensional_pipeline_recovers_groups() {
    let data = seven_groups(3);
    let rows = data.rows();
    let truth = data.truth_clustering();
    let inputs = vec![
        hierarchical(&rows, HierarchicalParams::new(LinkageMethod::Single, 7)),
        hierarchical(&rows, HierarchicalParams::new(LinkageMethod::Complete, 7)),
        hierarchical(&rows, HierarchicalParams::new(LinkageMethod::Average, 7)),
        hierarchical(&rows, HierarchicalParams::new(LinkageMethod::Ward, 7)),
        kmeans(&rows, &KMeansParams::new(7, 3)).clustering,
    ];
    let instance = CorrelationInstance::from_clusterings(&inputs);
    let aggregate = agglomerative(&instance.dense_oracle(), AgglomerativeParams::paper());
    let agg_ari = adjusted_rand_index(&aggregate, &truth);
    assert!(agg_ari > 0.9, "aggregate ARI = {agg_ari}");
    // Aggregation must not be (much) worse than the median input.
    let mut aris: Vec<f64> = inputs
        .iter()
        .map(|c| adjusted_rand_index(c, &truth))
        .collect();
    aris.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(agg_ari >= aris[aris.len() / 2] - 0.05);
}

#[test]
fn gaussian_noise_aggregation_finds_k() {
    let data = gaussian_with_noise(4, 60, 0.15, 0.02, 11);
    let rows = data.rows();
    let inputs: Vec<Clustering> = (2..=8)
        .map(|k| kmeans(&rows, &KMeansParams::new(k, 100 + k as u64)).clustering)
        .collect();
    let instance = CorrelationInstance::from_clusterings(&inputs);
    let aggregate = agglomerative(&instance.dense_oracle(), AgglomerativeParams::paper());
    // The four main clusters appear among the largest.
    let mut sizes = aggregate.cluster_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    assert!(sizes.len() >= 4);
    assert!(sizes[3] >= 40, "4th largest cluster too small: {sizes:?}");
}

#[test]
fn comparators_run_on_categorical_data() {
    let (dataset, _) = mushrooms_like(2);
    let dataset = dataset.subsample_random(300, 3);
    let r = rock(&dataset, RockParams::new(0.8, 7));
    assert_eq!(r.len(), 300);
    let l = limbo(&dataset, LimboParams::new(0.3, 7));
    assert_eq!(l.len(), 300);
    assert_eq!(l.num_clusters(), 7);
    // Both should beat a random assignment on classification error.
    let ec_rock = classification_error(&r, dataset.class_labels());
    let ec_limbo = classification_error(&l, dataset.class_labels());
    assert!(ec_rock < 0.45, "ROCK E_C = {ec_rock}");
    assert!(ec_limbo < 0.45, "LIMBO E_C = {ec_limbo}");
}

#[test]
fn local_search_postprocessing_only_improves() {
    let (dataset, _) = votes_like(9);
    let dataset = dataset.subsample_random(120, 4);
    let instance = CorrelationInstance::from_partial(
        attribute_clusterings(&dataset),
        MissingPolicy::Coin(0.5),
    );
    let oracle = instance.dense_oracle();
    for start in [
        Clustering::singletons(120),
        Clustering::one_cluster(120),
        agglomerative(&oracle, AgglomerativeParams::paper()),
    ] {
        let refined = local_search_from(&oracle, &start, 50, 1e-9);
        assert!(correlation_cost(&oracle, &refined) <= correlation_cost(&oracle, &start) + 1e-9);
    }
}

#[test]
fn census_heterogeneous_clusterings_shape() {
    let (dataset, _) = census_like_scaled(500, 1);
    let hetero = heterogeneous_clusterings(&dataset, 8);
    // 8 categorical + 6 numeric columns.
    assert_eq!(hetero.len(), 14);
    for c in &hetero[8..] {
        assert!(c.num_clusters() <= 8);
        assert_eq!(c.num_missing(), 0);
    }
}

#[test]
fn missing_policies_agree_when_nothing_is_missing() {
    let (dataset, _) = census_like_scaled(120, 5); // no missing values
    let clusterings = attribute_clusterings(&dataset);
    let a = CorrelationInstance::from_partial(clusterings.clone(), MissingPolicy::Coin(0.5));
    let b = CorrelationInstance::from_partial(clusterings, MissingPolicy::Ignore);
    let ca = agglomerative(&a.dense_oracle(), AgglomerativeParams::paper());
    let cb = agglomerative(&b.dense_oracle(), AgglomerativeParams::paper());
    assert_eq!(ca, cb);
}
