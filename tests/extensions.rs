//! Integration tests for the extension surface: the consensus builder on
//! realistic presets, weighted aggregation, the incremental assigner, and
//! the extension algorithms.

use aggclust_core::algorithms::sampling::{sampling_with_details, SamplingParams};
use aggclust_core::algorithms::{AgglomerativeParams, Algorithm, AnnealingParams, PivotParams};
use aggclust_core::assign::ClusterAssigner;
use aggclust_core::clustering::Clustering;
use aggclust_core::consensus::ConsensusBuilder;
use aggclust_core::cost::correlation_cost;
use aggclust_core::instance::{CorrelationInstance, DenseOracle, DistanceOracle, MissingPolicy};
use aggclust_data::presets::votes_like;
use aggclust_data::to_clusterings::attribute_clusterings;
use aggclust_metrics::classification_error;

#[test]
fn consensus_builder_on_votes_preset() {
    let (dataset, _) = votes_like(3);
    let inputs = attribute_clusterings(&dataset);
    let result = ConsensusBuilder::new()
        .missing_policy(MissingPolicy::Coin(0.5))
        .aggregate_partial(inputs);
    assert!(!result.sampled);
    assert!(result.clustering.num_clusters() <= 4);
    let ec = classification_error(&result.clustering, dataset.class_labels());
    assert!(ec < 0.2, "E_C = {ec}");
    // Refined result sits close to the lower bound.
    let lb = result.lower_bound.unwrap();
    assert!(result.cost <= lb * 1.15, "cost {} vs lb {lb}", result.cost);
}

#[test]
fn weighted_aggregation_shifts_the_consensus() {
    // Two clusterings that disagree; weights decide the winner.
    let a = Clustering::from_labels(vec![0, 0, 0, 1, 1, 1]);
    let b = Clustering::from_labels(vec![0, 0, 1, 1, 2, 2]);
    let favor_a = DenseOracle::from_weighted_clusterings(&[a.clone(), b.clone()], &[5.0, 1.0]);
    let favor_b = DenseOracle::from_weighted_clusterings(&[a.clone(), b.clone()], &[1.0, 5.0]);
    let algo = Algorithm::Agglomerative(AgglomerativeParams::default());
    assert_eq!(algo.run(&favor_a), a);
    assert_eq!(algo.run(&favor_b), b);
}

#[test]
fn assigner_agrees_with_sampling_assignment_phase() {
    // Build a block instance, sample it, and check that ClusterAssigner
    // reproduces the assignment SAMPLING made for non-sampled nodes that
    // did not go through the re-aggregation pass.
    let n = 300;
    let truth: Vec<u32> = (0..n as u32).map(|v| v % 3).collect();
    let inputs = vec![Clustering::from_labels(truth.clone()); 4];
    let oracle = DenseOracle::from_clusterings(&inputs);
    let params = SamplingParams::new(
        45,
        Algorithm::Agglomerative(AgglomerativeParams::default()),
        5,
    );
    let details = sampling_with_details(&oracle, &params);

    // Reference = the sample clustering restricted to sampled nodes.
    let sample = &details.sample;
    let reference = details.clustering.restrict(sample);
    let assigner = ClusterAssigner::new(reference.clone());
    for v in 0..n {
        if sample.contains(&v) {
            continue;
        }
        let decision = assigner.assign(&|si| oracle.dist(v, sample[si]));
        if let Some(label) = decision {
            // The assigner's target cluster contains exactly the sampled
            // nodes sharing v's final cluster.
            let expected = details
                .clustering
                .label(sample[reference.labels().iter().position(|&l| l == label).unwrap()]);
            assert_eq!(details.clustering.label(v), expected, "node {v}");
        }
    }
}

#[test]
fn extension_algorithms_run_through_the_enum() {
    let inputs = vec![
        Clustering::from_labels(vec![0, 0, 1, 1, 2, 2, 0]),
        Clustering::from_labels(vec![0, 0, 1, 1, 2, 2, 1]),
        Clustering::from_labels(vec![0, 0, 1, 1, 2, 2, 2]),
    ];
    let oracle = DenseOracle::from_clusterings(&inputs);
    let algos = [
        Algorithm::Pivot(PivotParams::randomized(3, 5)),
        Algorithm::Annealing(AnnealingParams {
            sweeps: 40,
            ..Default::default()
        }),
    ];
    for algo in &algos {
        let c = algo.run(&oracle);
        assert_eq!(c.len(), 7);
        // Core blocks must survive any reasonable aggregator.
        assert!(c.same_cluster(0, 1), "{}", algo.name());
        assert!(c.same_cluster(2, 3), "{}", algo.name());
        assert!(c.same_cluster(4, 5), "{}", algo.name());
    }
}

#[test]
fn branch_and_bound_confirms_local_search_on_presets() {
    // On a small votes subsample, LOCALSEARCH lands on the true optimum —
    // verified by branch-and-bound (infeasible for plain enumeration at
    // n = 20).
    let (dataset, _) = votes_like(7);
    let dataset = dataset.subsample_random(20, 1);
    let instance = CorrelationInstance::from_partial(
        attribute_clusterings(&dataset),
        MissingPolicy::Coin(0.5),
    );
    let oracle = instance.dense_oracle();
    let exact = aggclust_core::exact::branch_and_bound(&oracle);
    let ls = Algorithm::LocalSearch(Default::default()).run(&oracle);
    let ls_cost = correlation_cost(&oracle, &ls);
    assert!(
        ls_cost <= exact.cost * 1.02 + 1e-9,
        "LocalSearch {ls_cost} vs optimum {}",
        exact.cost
    );
    assert!(exact.cost <= ls_cost + 1e-9);
}
