//! Fault-injection harness: corrupted, truncated, and adversarial inputs
//! must surface as typed errors or valid anytime results — never as panics,
//! and never as runs that blow far past their deadline.

use std::time::{Duration, Instant};

use aggclust_cli::csv::parse_label_matrix;
use aggclust_core::algorithms::local_search::local_search_budgeted;
use aggclust_core::algorithms::sampling::sampling_budgeted;
use aggclust_core::algorithms::{
    AgglomerativeParams, Algorithm, AnnealingParams, BallsParams, FurthestParams,
    LocalSearchParams, PivotParams, SamplingParams,
};
use aggclust_core::clustering::{Clustering, PartialClustering};
use aggclust_core::consensus::ConsensusBuilder;
use aggclust_core::cost::correlation_cost;
use aggclust_core::instance::{ClusteringsOracle, CorrelationInstance, DenseOracle, MissingPolicy};
use aggclust_core::test_support::{
    for_each_bit_flip, for_each_truncation, strided_cuts, ALL_BITS, SPOT_BITS,
};
use aggclust_core::{AggError, CancelToken, RunBudget, RunStatus};
use aggclust_tests::{adversarial_disagreeing, clustering, corrupt_bytes, truncate_text};
use proptest::prelude::*;

const FIGURE1_CSV: &str = "0,0,0\n0,1,1\n1,0,0\n1,1,1\n2,2,2\n2,3,2\n";

fn all_algorithms(seed: u64) -> Vec<Algorithm> {
    vec![
        Algorithm::Balls(BallsParams::default()),
        Algorithm::Agglomerative(AgglomerativeParams::default()),
        Algorithm::Furthest(FurthestParams::default()),
        Algorithm::LocalSearch(LocalSearchParams::default()),
        Algorithm::Pivot(PivotParams::randomized(seed, 3)),
        Algorithm::Annealing(AnnealingParams {
            seed,
            ..Default::default()
        }),
    ]
}

// ---------------------------------------------------------------------------
// Corrupted and truncated files
// ---------------------------------------------------------------------------

#[test]
fn random_byte_flips_never_panic_the_parser_or_the_pipeline() {
    for seed in 0..200u64 {
        for flips in [1usize, 3, 8, 24] {
            let corrupted = corrupt_bytes(FIGURE1_CSV, flips, seed);
            let text = String::from_utf8_lossy(&corrupted);
            // Parsing must return Ok or a typed error, never panic.
            if let Ok(inputs) = parse_label_matrix(&text, ',', false) {
                // Whatever parsed must aggregate without panicking too.
                let outcome = ConsensusBuilder::new().try_aggregate_partial(inputs);
                match outcome {
                    Ok(result) => assert!(!result.clustering.labels().is_empty()),
                    Err(e) => {
                        let _ = e.to_string(); // typed, displayable
                    }
                }
            }
        }
    }
}

#[test]
fn truncated_files_never_panic() {
    for step in 0..=40 {
        let text = truncate_text(FIGURE1_CSV, step as f64 / 40.0);
        match parse_label_matrix(text, ',', false) {
            Ok(inputs) => {
                let _ = ConsensusBuilder::new().try_aggregate_partial(inputs);
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_bytes_never_panic_the_csv_parser(
        bytes in prop::collection::vec(0u8..=255, 0..200)
    ) {
        let text = String::from_utf8_lossy(&bytes);
        for separator in [',', '\t', ';'] {
            for header in [false, true] {
                let _ = parse_label_matrix(&text, separator, header);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Invalid numeric inputs
// ---------------------------------------------------------------------------

#[test]
fn nan_and_negative_weights_are_typed_errors() {
    let cs = vec![clustering(&[0, 0, 1]), clustering(&[0, 1, 1])];
    for weights in [
        [1.0, f64::NAN],
        [1.0, -2.0],
        [0.0, 0.0],
        [1.0, f64::INFINITY],
    ] {
        let result = DenseOracle::try_from_weighted_clusterings(&cs, &weights);
        assert!(
            matches!(result, Err(AggError::InvalidInstance { .. })),
            "weights {weights:?} should be rejected"
        );
    }
}

#[test]
fn out_of_range_distances_are_typed_errors() {
    assert!(matches!(
        DenseOracle::try_from_fn(4, |u, v| (u + v) as f64),
        Err(AggError::InvalidInstance { .. })
    ));
    assert!(matches!(
        DenseOracle::try_from_fn(4, |_, _| f64::NAN),
        Err(AggError::InvalidInstance { .. })
    ));
}

// ---------------------------------------------------------------------------
// Degenerate instances through every algorithm
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn degenerate_instances_never_panic_any_algorithm(seed in 0u64..1000) {
        let degenerate_oracles = vec![
            // n = 0 and n = 1.
            DenseOracle::from_clusterings(&[clustering(&[])]),
            DenseOracle::from_clusterings(&[clustering(&[0])]),
            // Single cluster everywhere.
            DenseOracle::from_clusterings(&[clustering(&[0, 0, 0, 0])]),
            // Perfectly contradictory pair of inputs.
            DenseOracle::from_clusterings(&[
                clustering(&[0, 0, 1, 1]),
                clustering(&[0, 1, 0, 1]),
            ]),
            // All labels missing: every pairwise distance is ½ (maximum
            // uncertainty under the coin model).
            {
                use aggclust_core::instance::DistanceOracle as _;
                ClusteringsOracle::new(
                    vec![PartialClustering::from_labels(vec![None; 4])],
                    MissingPolicy::default(),
                )
                .to_dense()
            },
        ];
        for oracle in &degenerate_oracles {
            for algorithm in all_algorithms(seed) {
                let outcome = algorithm.run_budgeted(oracle, &RunBudget::unlimited());
                match outcome {
                    Ok(run) => prop_assert_eq!(run.clustering.len(), oracle_len(oracle)),
                    Err(e) => { let _ = e.to_string(); }
                }
            }
        }
    }
}

fn oracle_len(o: &DenseOracle) -> usize {
    use aggclust_core::instance::DistanceOracle;
    o.len()
}

#[test]
fn empty_and_all_missing_inputs_are_degenerate_errors() {
    // m = 0: no input clusterings at all.
    assert!(matches!(
        CorrelationInstance::try_from_partial(vec![], MissingPolicy::default()),
        Err(AggError::Degenerate { .. })
    ));
    assert!(matches!(
        DenseOracle::try_from_clusterings(&[]),
        Err(AggError::Degenerate { .. })
    ));
    let all_missing = vec![
        PartialClustering::from_labels(vec![None; 5]),
        PartialClustering::from_labels(vec![None; 5]),
    ];
    assert!(matches!(
        CorrelationInstance::try_from_partial(all_missing, MissingPolicy::default()),
        Err(AggError::Degenerate { .. })
    ));
    assert!(matches!(
        ConsensusBuilder::new().try_aggregate(&[]),
        Err(AggError::Degenerate { .. })
    ));
}

#[test]
fn adversarial_all_disagreeing_inputs_still_aggregate() {
    let inputs = adversarial_disagreeing(40, 7);
    let result = ConsensusBuilder::new().try_aggregate(&inputs).unwrap();
    assert_eq!(result.clustering.len(), 40);
    assert!(result.status.is_converged());
    // The consensus can be no better than the instance lower bound allows,
    // but it must still be a finite, valid cost.
    assert!(result.cost.is_finite());
}

// ---------------------------------------------------------------------------
// Snapshot corruption: checkpoints must never panic or load garbage labels
// ---------------------------------------------------------------------------

use aggclust_core::snapshot::{
    decode, encode, load_snapshot, save_snapshot, AlgorithmSnapshot, LocalSearchSnapshot, Snapshot,
    SnapshotLoad,
};

fn sample_snapshot() -> Snapshot {
    Snapshot {
        stage: 0,
        state: AlgorithmSnapshot::LocalSearch(LocalSearchSnapshot {
            labels: (0..64u32).map(|v| v % 7).collect(),
            pass: 3,
            next_node: 17,
            moved_in_pass: true,
            iterations: 209,
            rng: [1, 2, 3, 4],
        }),
    }
}

#[test]
fn truncated_checkpoints_are_detected_at_every_length() {
    let bytes = encode(&sample_snapshot());
    for_each_truncation(&bytes, |len, prefix| {
        assert!(
            decode(prefix).is_err(),
            "truncation to {len} of {} bytes went undetected",
            bytes.len()
        );
    });
}

#[test]
fn bit_flipped_checkpoints_never_load_garbage() {
    // Every byte of the envelope and payload is load-bearing: magic and
    // version by their own checks, payload length by the size check, the
    // payload by the CRC, the CRC by itself. A single bit flip anywhere
    // must therefore be rejected — silently loading mutated labels would
    // poison the resumed run.
    let bytes = encode(&sample_snapshot());
    for_each_bit_flip(&bytes, &SPOT_BITS, |i, bit, corrupted| {
        assert!(
            decode(corrupted).is_err(),
            "flip at byte {i} bit {bit} was accepted"
        );
    });
}

#[test]
fn stale_version_headers_are_rejected_before_the_checksum() {
    let mut bytes = encode(&sample_snapshot());
    // The version word sits after the 8-byte magic.
    for stale in [0u32, 2, 7, u32::MAX] {
        bytes[8..12].copy_from_slice(&stale.to_le_bytes());
        let reason = decode(&bytes).unwrap_err();
        assert!(
            reason.contains("version"),
            "stale version {stale} produced unrelated error {reason:?}"
        );
    }
}

#[test]
fn corrupt_checkpoint_on_disk_recovers_to_a_fresh_run() {
    let dir = std::env::temp_dir().join("aggclust_fault_snapshot_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("ckpt.bin");
    save_snapshot(&path, &sample_snapshot()).expect("save");

    // Sanity: the pristine file loads.
    assert!(matches!(load_snapshot(&path), SnapshotLoad::Loaded(_)));

    let pristine = std::fs::read(&path).expect("read");
    let corruptions: Vec<Vec<u8>> = vec![
        pristine[..pristine.len() / 2].to_vec(), // truncated
        {
            let mut b = pristine.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0x40; // bit-flipped payload
            b
        },
        {
            let mut b = pristine.clone();
            b[8..12].copy_from_slice(&99u32.to_le_bytes()); // stale version
            b
        },
        b"not a checkpoint at all".to_vec(),
        Vec::new(), // zero-length file
    ];
    let inputs = adversarial_disagreeing(20, 4);
    let reference = ConsensusBuilder::new().try_aggregate(&inputs).unwrap();
    for (i, corrupted) in corruptions.iter().enumerate() {
        std::fs::write(&path, corrupted).expect("write");
        let loaded = load_snapshot(&path);
        assert!(
            matches!(loaded, SnapshotLoad::Corrupt(_)),
            "corruption case {i} loaded as {loaded:?}"
        );
        // The documented recovery — fall back to a fresh run — produces
        // exactly what an unresumed aggregation produces.
        let fresh = ConsensusBuilder::new().try_aggregate(&inputs).unwrap();
        assert_eq!(fresh.clustering, reference.clustering, "case {i}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn valid_snapshot_for_the_wrong_instance_is_ignored_not_loaded() {
    // A perfectly well-formed checkpoint whose labels describe a different
    // instance (wrong n) must not steer the resumed run: the consensus
    // pipeline validates and falls back to a fresh start.
    let inputs = adversarial_disagreeing(20, 4);
    let reference = ConsensusBuilder::new().try_aggregate(&inputs).unwrap();
    let resumed = ConsensusBuilder::new()
        .resume_from(sample_snapshot()) // labels for n = 64, not 20
        .try_aggregate(&inputs)
        .unwrap();
    assert_eq!(resumed.clustering, reference.clustering);
    assert_eq!(resumed.cost, reference.cost);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_the_snapshot_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..512)
    ) {
        // decode() is total: any byte soup is Ok or Err(reason), never a
        // panic and never an unbounded allocation (lengths are validated
        // against the remaining payload before any Vec is reserved).
        let _ = decode(&bytes);
    }

    #[test]
    fn flipping_bits_in_a_real_checkpoint_never_panics(
        seed in 0u64..500, flips in 1usize..12
    ) {
        let bytes = encode(&sample_snapshot());
        let mut corrupted = bytes.clone();
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for _ in 0..flips {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let i = (state as usize) % corrupted.len();
            corrupted[i] ^= 1 << ((state >> 32) % 8);
        }
        match decode(&corrupted) {
            Ok(loaded) => prop_assert_eq!(loaded, sample_snapshot()),
            Err(reason) => prop_assert!(!reason.is_empty()),
        }
    }
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation: anytime semantics under time pressure
// ---------------------------------------------------------------------------

/// The ISSUE acceptance test: LOCALSEARCH on n = 5000 with a 50 ms deadline
/// must come back `BudgetExceeded`, promptly, with a valid best-so-far
/// clustering no worse than its starting point.
#[test]
fn localsearch_deadline_on_large_instance_returns_best_so_far() {
    let n = 5000;
    // Three clusterings of 5000 objects that broadly agree on 10 groups but
    // disagree on rotated slices — enough structure for moves to pay off.
    let inputs: Vec<PartialClustering> = (0..3u32)
        .map(|i| {
            let labels = (0..n)
                .map(|v| Some((((v as u32) + 137 * i) / (n as u32 / 10)).min(9)))
                .collect();
            PartialClustering::from_labels(labels)
        })
        .collect();
    // Lazy oracle: the dense n² matrix would dominate the deadline.
    let oracle = ClusteringsOracle::new(inputs, MissingPolicy::default());

    let start = Clustering::singletons(n);
    let budget = RunBudget::unlimited().with_deadline(Duration::from_millis(50));
    let t0 = Instant::now();
    let outcome = local_search_budgeted(&oracle, LocalSearchParams::default(), &budget).unwrap();
    let elapsed = t0.elapsed();

    assert_eq!(outcome.status, RunStatus::BudgetExceeded);
    assert_eq!(outcome.clustering.len(), n);
    // "Never hangs past the deadline": one node visit is O(n·m), so the
    // overshoot is bounded; 2 s is orders of magnitude of slack.
    assert!(
        elapsed < Duration::from_secs(2),
        "LOCALSEARCH overshot its 50 ms deadline by {elapsed:?}"
    );
    // Anytime quality: never worse than the initial clustering.
    let initial_cost = correlation_cost(&oracle, &start);
    let final_cost = correlation_cost(&oracle, &outcome.clustering);
    assert!(
        final_cost <= initial_cost + 1e-9,
        "best-so-far cost {final_cost} worse than initial {initial_cost}"
    );
}

#[test]
fn sampling_respects_a_deadline_on_a_large_instance() {
    let n = 20_000;
    let inputs: Vec<PartialClustering> = (0..3u32)
        .map(|i| {
            let labels = (0..n)
                .map(|v| Some((((v as u32) + 977 * i) / (n as u32 / 8)).min(7)))
                .collect();
            PartialClustering::from_labels(labels)
        })
        .collect();
    let oracle = ClusteringsOracle::new(inputs, MissingPolicy::default());
    let params = SamplingParams::new(
        400,
        Algorithm::Agglomerative(AgglomerativeParams::default()),
        7,
    );
    let budget = RunBudget::unlimited().with_deadline(Duration::from_millis(50));
    let t0 = Instant::now();
    let outcome = sampling_budgeted(&oracle, &params, &budget).unwrap();
    assert_eq!(outcome.clustering.len(), n);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "SAMPLING overshot its deadline: {:?}",
        t0.elapsed()
    );
}

#[test]
fn cancellation_stops_every_algorithm_with_a_valid_result() {
    let cs = adversarial_disagreeing(30, 5);
    let oracle = DenseOracle::from_clusterings(&cs);
    let token = CancelToken::new();
    token.cancel();
    let budget = RunBudget::unlimited().with_cancel_token(token);
    for algorithm in all_algorithms(11) {
        let outcome = algorithm.run_budgeted(&oracle, &budget).unwrap();
        assert_eq!(outcome.clustering.len(), 30, "{}", algorithm.name());
        assert_eq!(outcome.status, RunStatus::Cancelled, "{}", algorithm.name());
    }
}

#[test]
fn consensus_degradation_chain_survives_a_zero_budget() {
    let inputs = adversarial_disagreeing(25, 4);
    let result = ConsensusBuilder::new()
        .budget(RunBudget::unlimited().with_max_iters(0))
        .try_aggregate(&inputs)
        .unwrap();
    assert_eq!(result.clustering.len(), 25);
    assert_eq!(result.status, RunStatus::BudgetExceeded);
    assert!(!result.warnings.is_empty());
}

// ---------------------------------------------------------------------------
// Out-of-core spill: tile corruption, torn writes, and dead disks must
// rebuild or degrade with a typed warning — never panic, never wrong labels
// ---------------------------------------------------------------------------

use aggclust_core::consensus::Warning;
use aggclust_core::{cleanup_spill_dir, SpillConfig, SpilledOracle};
use std::path::{Path, PathBuf};

/// A memory cap tight enough that the dense matrix is refused but the
/// packed labels and a tile or two still fit.
const SPILL_TEST_CAP: u64 = 16 * 1024;

fn spill_builder(dir: &Path) -> ConsensusBuilder {
    ConsensusBuilder::new()
        .algorithm(Algorithm::Balls(BallsParams::default()))
        .budget(RunBudget::unlimited().with_mem_limit_bytes(SPILL_TEST_CAP))
        .spill_dir(dir)
}

fn spill_temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aggclust_fault_spill_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tile_paths(dir: &Path) -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("spill dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|f| f.to_string_lossy().starts_with("tile-"))
        })
        .collect();
    paths.sort();
    paths
}

#[test]
fn spilled_consensus_matches_the_unconstrained_run() {
    let inputs = adversarial_disagreeing(120, 5);
    let reference = ConsensusBuilder::new()
        .algorithm(Algorithm::Balls(BallsParams::default()))
        .try_aggregate(&inputs)
        .unwrap();
    assert!(reference.warnings.is_empty());
    let dir = spill_temp_dir("match");
    let spilled = spill_builder(&dir).try_aggregate(&inputs).unwrap();
    assert_eq!(spilled.clustering, reference.clustering);
    assert!(spilled
        .warnings
        .iter()
        .any(|w| matches!(w, Warning::MemoryDegradedToSpill { .. })));
    assert!(!spilled.warnings.iter().any(|w| matches!(
        w,
        Warning::MemoryDegradedToSampling { .. } | Warning::MemoryDegradedToLazyOracle { .. }
    )));
    cleanup_spill_dir(&dir);
}

#[test]
fn corrupted_orphan_tiles_are_rebuilt_never_trusted() {
    // A killed spilled run leaves tile frames behind; a rerun reclaims the
    // valid ones. Corrupt every orphan in a different way — bit flips in
    // the envelope, the payload, and the CRC — and the rerun must still
    // produce the reference labels by rejecting and rebuilding each frame.
    let inputs = adversarial_disagreeing(100, 4);
    let dir = spill_temp_dir("corrupt_orphans");
    let reference = spill_builder(&dir).try_aggregate(&inputs).unwrap();
    let tiles = tile_paths(&dir);
    assert!(tiles.len() > 1, "expected several tiles, got {tiles:?}");
    for (i, path) in tiles.iter().enumerate() {
        let mut bytes = std::fs::read(path).expect("read tile");
        let at = (i * 13) % bytes.len();
        bytes[at] ^= 1 << (i % 8);
        std::fs::write(path, &bytes).expect("write corrupt tile");
    }
    let rerun = spill_builder(&dir).try_aggregate(&inputs).unwrap();
    assert_eq!(rerun.clustering, reference.clustering);
    cleanup_spill_dir(&dir);
}

#[test]
fn torn_and_truncated_tiles_are_rebuilt_at_every_cut_point() {
    let inputs = adversarial_disagreeing(100, 4);
    let dir = spill_temp_dir("torn");
    let reference = spill_builder(&dir).try_aggregate(&inputs).unwrap();
    let tiles = tile_paths(&dir);
    assert!(!tiles.is_empty());
    let pristine = std::fs::read(&tiles[0]).expect("read tile");
    // Sweep truncation lengths (torn write = prefix of the frame), plus a
    // zero-length file and garbage that is not a frame at all. The stride
    // keeps the number of full consensus reruns bounded while still cutting
    // inside the envelope header, the frame fields, and the payload.
    let cuts = strided_cuts(pristine.len(), 199);
    for len in cuts {
        std::fs::write(&tiles[0], &pristine[..len]).expect("write torn tile");
        let rerun = spill_builder(&dir).try_aggregate(&inputs).unwrap();
        assert_eq!(rerun.clustering, reference.clustering, "cut at {len}");
    }
    std::fs::write(&tiles[0], b"not a tile frame").expect("write garbage");
    let rerun = spill_builder(&dir).try_aggregate(&inputs).unwrap();
    assert_eq!(rerun.clustering, reference.clustering);
    cleanup_spill_dir(&dir);
}

#[test]
fn every_bit_flip_in_a_tile_frame_is_rejected_or_identical() {
    // Exhaustive single-bit sweep over a whole frame, through the public
    // oracle API: each flip must either be caught (CRC/field validation →
    // rebuild) or, never, accepted with different values. Uses a tiny
    // instance so the sweep stays fast.
    let cs = adversarial_disagreeing(16, 3);
    let instance = CorrelationInstance::try_from_partial(
        cs.iter()
            .map(aggclust_core::clustering::PartialClustering::from_total)
            .collect(),
        MissingPolicy::default(),
    )
    .unwrap();
    use aggclust_core::instance::DistanceOracle as _;
    let dense = instance.dense_oracle();
    let dir = spill_temp_dir("bitflip");
    let budget = RunBudget::unlimited().with_mem_limit_bytes(512);
    let config = SpillConfig::new(&dir).with_tile_bytes(256);
    let spilled = SpilledOracle::try_build(&instance, &budget, &config).unwrap();
    let tiles = tile_paths(&dir);
    let pristine = std::fs::read(&tiles[0]).expect("read tile");
    for_each_bit_flip(&pristine, &ALL_BITS, |byte, bit, corrupted| {
        std::fs::write(&tiles[0], corrupted).expect("write");
        for u in 0..16 {
            for v in 0..16 {
                assert_eq!(
                    spilled.dist(u, v).to_bits(),
                    dense.dist(u, v).to_bits(),
                    "flip {byte}:{bit} changed dist({u},{v})"
                );
            }
        }
    });
    drop(spilled);
    cleanup_spill_dir(&dir);
}

#[test]
fn dead_spill_disk_degrades_to_lazy_with_typed_warnings() {
    // Simulate a persistently failing disk by pointing the spill dir at a
    // path under a regular file: every create/write fails, as with ENOSPC.
    let inputs = adversarial_disagreeing(80, 4);
    let blocker = std::env::temp_dir().join("aggclust_fault_spill_dead_disk");
    std::fs::write(&blocker, b"file, not dir").expect("write blocker");
    let result = spill_builder(&blocker.join("tiles"))
        .try_aggregate(&inputs)
        .unwrap();
    std::fs::remove_file(&blocker).ok();
    assert!(result
        .warnings
        .iter()
        .any(|w| matches!(w, Warning::SpillFailed { .. })));
    assert!(result
        .warnings
        .iter()
        .any(|w| matches!(w, Warning::MemoryDegradedToLazyOracle { .. })));
    // Degraded, yes — but never silently and never to garbage.
    let reference = ConsensusBuilder::new()
        .algorithm(Algorithm::Balls(BallsParams::default()))
        .try_aggregate(&inputs)
        .unwrap();
    assert_eq!(result.clustering, reference.clustering);
}
