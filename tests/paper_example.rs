//! The worked example of Figures 1–2, verified end to end through every
//! public entry point: this is the one instance whose numbers the paper
//! states exactly, so everything must agree with it.

use aggclust_core::algorithms::{
    agglomerative::agglomerative, balls::balls, best::best_clustering, furthest::furthest,
    local_search::local_search, sampling::sampling, AgglomerativeParams, Algorithm, BallsParams,
    FurthestParams, LocalSearchParams, SamplingParams,
};
use aggclust_core::clustering::Clustering;
use aggclust_core::cost::{correlation_cost, lower_bound};
use aggclust_core::distance::{disagreement_distance, total_disagreement};
use aggclust_core::exact::optimal_clustering;
use aggclust_core::instance::{
    ClusteringsOracle, CorrelationInstance, DenseOracle, DistanceOracle,
};
use aggclust_metrics::disagreement::{disagreement_error, expected_disagreement_error};

fn figure1_inputs() -> Vec<Clustering> {
    vec![
        Clustering::from_labels(vec![0, 0, 1, 1, 2, 2]),
        Clustering::from_labels(vec![0, 1, 0, 1, 2, 3]),
        Clustering::from_labels(vec![0, 1, 0, 1, 2, 2]),
    ]
}

fn optimum() -> Clustering {
    Clustering::from_labels(vec![0, 1, 0, 1, 2, 2])
}

#[test]
fn figure1_has_five_disagreements_at_the_optimum() {
    let inputs = figure1_inputs();
    assert_eq!(total_disagreement(&inputs, &optimum()), 5);
    // Broken down as in the paper: 4 vs C1, 1 vs C2, 0 vs C3.
    assert_eq!(disagreement_distance(&inputs[0], &optimum()), 4);
    assert_eq!(disagreement_distance(&inputs[1], &optimum()), 1);
    assert_eq!(disagreement_distance(&inputs[2], &optimum()), 0);
}

#[test]
fn figure2_edge_weights() {
    let oracle = DenseOracle::from_clusterings(&figure1_inputs());
    let third = 1.0 / 3.0;
    let solid = [(0, 2), (1, 3), (4, 5)];
    let dashed = [(0, 1), (2, 3)];
    for (u, v) in solid {
        assert!((oracle.dist(u, v) - third).abs() < 1e-12);
    }
    for (u, v) in dashed {
        assert!((oracle.dist(u, v) - 2.0 * third).abs() < 1e-12);
    }
    // v5 is separated from v1..v4 by every clustering.
    for v in 0..4 {
        assert_eq!(oracle.dist(4, v), 1.0);
    }
}

#[test]
fn exhaustive_search_confirms_the_paper_optimum() {
    let oracle = DenseOracle::from_clusterings(&figure1_inputs());
    let exact = optimal_clustering(&oracle);
    assert_eq!(exact.clustering, optimum());
    assert!((exact.cost - 5.0 / 3.0).abs() < 1e-9);
    assert_eq!(exact.partitions_examined, 203); // Bell(6)
}

#[test]
fn all_five_algorithms_recover_the_optimum() {
    let inputs = figure1_inputs();
    let oracle = DenseOracle::from_clusterings(&inputs);

    assert_eq!(best_clustering(&inputs).clustering, optimum());
    assert_eq!(balls(&oracle, BallsParams::practical()), optimum());
    assert_eq!(
        agglomerative(&oracle, AgglomerativeParams::paper()),
        optimum()
    );
    assert_eq!(furthest(&oracle, FurthestParams::default()), optimum());
    assert_eq!(
        local_search(&oracle, LocalSearchParams::default()),
        optimum()
    );
    // SAMPLING with the full set as the sample degenerates to the base
    // algorithm.
    let params = SamplingParams::new(
        6,
        Algorithm::Agglomerative(AgglomerativeParams::default()),
        0,
    );
    assert_eq!(sampling(&oracle, &params), optimum());
}

#[test]
fn metrics_agree_with_the_core() {
    let inputs = figure1_inputs();
    let oracle = DenseOracle::from_clusterings(&inputs);
    let opt = optimum();
    assert_eq!(disagreement_error(&inputs, &opt), 5);
    assert!((expected_disagreement_error(&oracle, &opt) - 5.0).abs() < 1e-9);
    assert!(lower_bound(&oracle) <= correlation_cost(&oracle, &opt) + 1e-12);
}

#[test]
fn lazy_and_dense_oracles_agree_on_the_example() {
    let inputs = figure1_inputs();
    let dense = DenseOracle::from_clusterings(&inputs);
    let lazy = ClusteringsOracle::from_total(&inputs);
    let instance = CorrelationInstance::from_clusterings(&inputs);
    for u in 0..6 {
        for v in 0..6 {
            let d = dense.dist(u, v);
            assert!((d - lazy.dist(u, v)).abs() < 1e-12);
            assert!((d - instance.dense_oracle().dist(u, v)).abs() < 1e-12);
        }
    }
}
