//! SAMPLING correctness and oracle-consistency tests at moderate scale —
//! the properties §4.1 of the paper relies on.

use aggclust_core::algorithms::sampling::{
    sampling, sampling_with_details, SampleSize, SamplingParams,
};
use aggclust_core::algorithms::{AgglomerativeParams, Algorithm, BallsParams};
use aggclust_core::clustering::Clustering;
use aggclust_core::cost::correlation_cost;
use aggclust_core::instance::{
    ClusteringsOracle, CorrelationInstance, DistanceOracle, MissingPolicy,
};
use aggclust_data::presets::votes_like;
use aggclust_data::to_clusterings::attribute_clusterings;
use aggclust_metrics::classification_error;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Clusterings with a hidden block structure of `k` blocks over `n` nodes.
fn block_inputs(n: usize, m: usize, k: u32, seed: u64) -> Vec<Clustering> {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth: Vec<u32> = (0..n).map(|v| (v as u32) % k).collect();
    (0..m)
        .map(|_| {
            let mut labels = truth.clone();
            for _ in 0..(n / 20) {
                let v = rng.gen_range(0..n);
                labels[v] = rng.gen_range(0..k);
            }
            Clustering::from_labels(labels)
        })
        .collect()
}

#[test]
fn lazy_oracle_scales_where_dense_would_not_be_needed() {
    // 20k nodes: the dense matrix would be 1.6 GB; the lazy oracle runs
    // SAMPLING in O(n·s) lookups.
    let n = 20_000;
    let inputs = block_inputs(n, 6, 5, 1);
    let oracle = ClusteringsOracle::from_total(&inputs);
    let params = SamplingParams::new(
        120,
        Algorithm::Agglomerative(AgglomerativeParams::default()),
        7,
    );
    let c = sampling(&oracle, &params);
    assert_eq!(c.len(), n);
    // The five blocks dominate the result.
    let mut sizes = c.cluster_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    assert!(sizes[4] > n / 10, "block structure lost: {:?}", &sizes[..5]);
}

#[test]
fn sample_size_log_policy() {
    let n = 10_000;
    let inputs = block_inputs(n, 4, 4, 3);
    let oracle = ClusteringsOracle::from_total(&inputs);
    let params = SamplingParams {
        size: SampleSize::LogFactor(12.0),
        base: Algorithm::Agglomerative(AgglomerativeParams::default()),
        seed: 5,
        recluster_singletons: true,
    };
    let details = sampling_with_details(&oracle, &params);
    let expected = (12.0 * (n as f64).ln()).ceil() as usize;
    assert_eq!(details.sample.len(), expected);
    assert!(details.clustering.num_clusters() >= 4);
}

#[test]
fn sampling_quality_improves_with_sample_size() {
    let (dataset, _) = votes_like(11);
    let instance = CorrelationInstance::from_partial(
        attribute_clusterings(&dataset),
        MissingPolicy::Coin(0.5),
    );
    let oracle = instance.dense_oracle();
    let base = Algorithm::Agglomerative(AgglomerativeParams::default());
    let full = base.run(&oracle);
    let full_cost = correlation_cost(&oracle, &full);

    let mut costs = Vec::new();
    for sample in [20usize, 80, 300] {
        let params = SamplingParams::new(sample, base.clone(), 3);
        let c = sampling(&oracle, &params);
        costs.push(correlation_cost(&oracle, &c));
    }
    // Largest sample must land within 5% of the non-sampling cost; the
    // smallest is allowed to be worse (but bounded).
    assert!(
        costs[2] <= full_cost * 1.05,
        "sample 300 cost {} vs full {}",
        costs[2],
        full_cost
    );
    assert!(costs[0] <= full_cost * 1.6);
}

#[test]
fn sampling_classification_error_converges() {
    // The Figure-5-middle property at test size.
    let (dataset, _) = votes_like(13);
    let instance = CorrelationInstance::from_partial(
        attribute_clusterings(&dataset),
        MissingPolicy::Coin(0.5),
    );
    let oracle = instance.dense_oracle();
    let base = Algorithm::Agglomerative(AgglomerativeParams::default());
    let full_ec = classification_error(&base.run(&oracle), dataset.class_labels());
    let params = SamplingParams::new(250, base, 17);
    let sampled_ec = classification_error(&sampling(&oracle, &params), dataset.class_labels());
    assert!(
        (sampled_ec - full_ec).abs() < 0.08,
        "sampled {sampled_ec} vs full {full_ec}"
    );
}

#[test]
fn deterministic_and_seed_sensitive() {
    let inputs = block_inputs(2_000, 5, 4, 9);
    let oracle = ClusteringsOracle::from_total(&inputs);
    let mk = |seed| SamplingParams::new(60, Algorithm::Balls(BallsParams::practical()), seed);
    assert_eq!(sampling(&oracle, &mk(1)), sampling(&oracle, &mk(1)));
    let a = sampling(&oracle, &mk(1));
    let b = sampling(&oracle, &mk(2));
    // Different seeds sample different nodes; results may coincide on easy
    // data but the samples must differ.
    let da = sampling_with_details(&oracle, &mk(1)).sample;
    let db = sampling_with_details(&oracle, &mk(2)).sample;
    assert_ne!(da, db);
    // Both recover the 4 blocks.
    assert!(a.num_clusters() >= 4 && b.num_clusters() >= 4);
}

#[test]
fn restricted_oracle_matches_parent() {
    let inputs = block_inputs(500, 4, 3, 21);
    let dense = CorrelationInstance::from_clusterings(&inputs).dense_oracle();
    let lazy = ClusteringsOracle::from_total(&inputs);
    let subset: Vec<usize> = (0..500).step_by(7).collect();
    let rd = dense.restrict(&subset);
    let rl = lazy.restrict(&subset);
    for i in 0..subset.len() {
        for j in 0..subset.len() {
            assert!((rd.dist(i, j) - dense.dist(subset[i], subset[j])).abs() < 1e-12);
            assert!((rd.dist(i, j) - rl.dist(i, j)).abs() < 1e-12);
        }
    }
}
